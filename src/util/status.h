// Minimal Status / Result<T> pair used for recoverable errors.
//
// The library forbids exceptions; constructors that can fail are replaced by
// factory functions returning Result<T>.
#ifndef P2PAQP_UTIL_STATUS_H_
#define P2PAQP_UTIL_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "util/logging.h"

namespace p2paqp::util {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kFailedPrecondition,
  kNotFound,
  kUnavailable,
  kInternal,
};

// Returns a short human-readable name ("OK", "INVALID_ARGUMENT", ...).
const char* StatusCodeToString(StatusCode code);

// Value-semantic error descriptor. A default-constructed Status is OK.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string message) {
    return Status(StatusCode::kInvalidArgument, std::move(message));
  }
  static Status OutOfRange(std::string message) {
    return Status(StatusCode::kOutOfRange, std::move(message));
  }
  static Status FailedPrecondition(std::string message) {
    return Status(StatusCode::kFailedPrecondition, std::move(message));
  }
  static Status NotFound(std::string message) {
    return Status(StatusCode::kNotFound, std::move(message));
  }
  static Status Unavailable(std::string message) {
    return Status(StatusCode::kUnavailable, std::move(message));
  }
  static Status Internal(std::string message) {
    return Status(StatusCode::kInternal, std::move(message));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "INVALID_ARGUMENT: jump size must be positive".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

inline bool operator==(const Status& a, const Status& b) {
  return a.code() == b.code() && a.message() == b.message();
}

// Holds either a value or an error Status.
template <typename T>
class Result {
 public:
  // Intentionally implicit so functions can `return value;` / `return status;`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    P2PAQP_CHECK(!status_.ok()) << "Result constructed from OK status";
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  // Requires ok(); aborts otherwise.
  const T& value() const& {
    P2PAQP_CHECK(ok()) << status_.ToString();
    return *value_;
  }
  T& value() & {
    P2PAQP_CHECK(ok()) << status_.ToString();
    return *value_;
  }
  T&& value() && {
    P2PAQP_CHECK(ok()) << status_.ToString();
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace p2paqp::util

#endif  // P2PAQP_UTIL_STATUS_H_

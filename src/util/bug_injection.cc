#include "util/bug_injection.h"

namespace p2paqp::util {

namespace {
InjectedBug g_armed_bug = InjectedBug::kNone;
}  // namespace

InjectedBug ArmedBug() { return g_armed_bug; }

void ArmBug(InjectedBug bug) { g_armed_bug = bug; }

}  // namespace p2paqp::util

// Counting replacements for the global allocation functions (alloc_guard.h).
//
// Every operator new variant funnels into CountedAlloc/CountedAllocAligned,
// which bump the calling thread's counter and defer to malloc, so sanitizer
// builds keep their malloc interposition (poisoning, leak detection) and the
// count is identical across build types. The deallocation family mirrors the
// allocation one exactly — plain and array forms share a representation, so
// both families forward to the same free().
#include "util/alloc_guard.h"

#include <cstdlib>
#include <new>

namespace p2paqp::util {

namespace {

thread_local uint64_t t_allocations = 0;

void* CountedAlloc(std::size_t size) {
  ++t_allocations;
  void* p = std::malloc(size != 0 ? size : 1);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* CountedAllocNothrow(std::size_t size) noexcept {
  ++t_allocations;
  return std::malloc(size != 0 ? size : 1);
}

void* CountedAllocAligned(std::size_t size, std::size_t alignment) {
  ++t_allocations;
  if (alignment < sizeof(void*)) alignment = sizeof(void*);
  if (size == 0) size = alignment;
  void* p = nullptr;
  if (posix_memalign(&p, alignment, size) != 0) throw std::bad_alloc();
  return p;
}

}  // namespace

uint64_t ThreadAllocations() { return t_allocations; }

}  // namespace p2paqp::util

void* operator new(std::size_t size) {
  return p2paqp::util::CountedAlloc(size);
}
void* operator new[](std::size_t size) {
  return p2paqp::util::CountedAlloc(size);
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return p2paqp::util::CountedAllocNothrow(size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return p2paqp::util::CountedAllocNothrow(size);
}
void* operator new(std::size_t size, std::align_val_t alignment) {
  return p2paqp::util::CountedAllocAligned(
      size, static_cast<std::size_t>(alignment));
}
void* operator new[](std::size_t size, std::align_val_t alignment) {
  return p2paqp::util::CountedAllocAligned(
      size, static_cast<std::size_t>(alignment));
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

#include "util/numa.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>

#include "util/logging.h"

#ifdef P2PAQP_HAVE_LIBNUMA
#include <numa.h>
#endif

namespace p2paqp::util {

namespace {

size_t HardwareCpus() {
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<size_t>(hw);
}

// Parses a sysfs cpulist ("0-3,8,10-11") into sorted CPU ids. Returns an
// empty vector on malformed input (the caller falls back).
std::vector<int> ParseCpuList(const std::string& text) {
  std::vector<int> cpus;
  size_t pos = 0;
  while (pos < text.size()) {
    char* end = nullptr;
    long lo = std::strtol(text.c_str() + pos, &end, 10);
    if (end == text.c_str() + pos || lo < 0) return {};
    long hi = lo;
    pos = static_cast<size_t>(end - text.c_str());
    if (pos < text.size() && text[pos] == '-') {
      ++pos;
      hi = std::strtol(text.c_str() + pos, &end, 10);
      if (end == text.c_str() + pos || hi < lo) return {};
      pos = static_cast<size_t>(end - text.c_str());
    }
    for (long c = lo; c <= hi; ++c) cpus.push_back(static_cast<int>(c));
    if (pos < text.size()) {
      if (text[pos] != ',') break;  // Trailing newline/whitespace.
      ++pos;
    }
  }
  std::sort(cpus.begin(), cpus.end());
  return cpus;
}

#ifdef P2PAQP_HAVE_LIBNUMA
bool ProbeLibnuma(std::vector<NumaTopology::Node>* nodes) {
  if (numa_available() < 0) return false;
  int max_node = numa_max_node();
  int max_cpu = numa_num_configured_cpus();
  for (int n = 0; n <= max_node; ++n) {
    NumaTopology::Node node;
    node.id = n;
    for (int c = 0; c < max_cpu; ++c) {
      if (numa_node_of_cpu(c) == n) node.cpus.push_back(c);
    }
    if (!node.cpus.empty()) nodes->push_back(std::move(node));
  }
  return !nodes->empty();
}
#endif

bool ProbeSysfs(std::vector<NumaTopology::Node>* nodes) {
#ifdef __linux__
  for (int n = 0;; ++n) {
    char path[96];
    std::snprintf(path, sizeof(path),
                  "/sys/devices/system/node/node%d/cpulist", n);
    std::FILE* file = std::fopen(path, "r");
    if (file == nullptr) break;
    char buffer[4096];
    size_t got = std::fread(buffer, 1, sizeof(buffer) - 1, file);
    std::fclose(file);
    buffer[got] = '\0';
    NumaTopology::Node node;
    node.id = n;
    node.cpus = ParseCpuList(buffer);
    // Memory-only nodes (no CPUs) exist; skip them — lanes cannot run there.
    if (!node.cpus.empty()) nodes->push_back(std::move(node));
  }
  return !nodes->empty();
#else
  (void)nodes;
  return false;
#endif
}

NumaTopology ProbeTopology() {
  std::vector<NumaTopology::Node> nodes;
#ifdef P2PAQP_HAVE_LIBNUMA
  if (ProbeLibnuma(&nodes)) return NumaTopology::FromNodes(std::move(nodes));
#endif
  if (ProbeSysfs(&nodes)) return NumaTopology::FromNodes(std::move(nodes));
  return NumaTopology::SingleNode(HardwareCpus());
}

}  // namespace

NumaTopology NumaTopology::FromNodes(std::vector<Node> nodes) {
  P2PAQP_CHECK(!nodes.empty());
  NumaTopology topo;
  topo.num_cpus_ = 0;
  for (const Node& node : nodes) {
    P2PAQP_CHECK(!node.cpus.empty());
    topo.num_cpus_ += node.cpus.size();
  }
  topo.nodes_ = std::move(nodes);
  return topo;
}

NumaTopology NumaTopology::SingleNode(size_t num_cpus) {
  if (num_cpus == 0) num_cpus = 1;
  NumaTopology topo;
  Node node;
  node.id = 0;
  node.cpus.reserve(num_cpus);
  for (size_t c = 0; c < num_cpus; ++c) node.cpus.push_back(static_cast<int>(c));
  topo.nodes_.push_back(std::move(node));
  topo.num_cpus_ = num_cpus;
  return topo;
}

const NumaTopology& NumaTopology::Probed() {
  static const NumaTopology topo = ProbeTopology();
  return topo;
}

const NumaTopology& NumaTopology::Effective() {
  static const NumaTopology single = SingleNode(HardwareCpus());
  const char* env = std::getenv("P2PAQP_NUMA");
  if (env != nullptr && std::atol(env) == 0) return single;
  return Probed();
}

size_t NumaTopology::NodeOfLane(size_t lane, size_t lanes) const {
  P2PAQP_DCHECK(lane < lanes);
  const size_t n = nodes_.size();
  if (n <= 1) return 0;
  // Invert the contiguous block partition: lane l belongs to the node k
  // with k*lanes/n <= l < (k+1)*lanes/n.
  size_t node = (lane * n) / lanes;
  while (node + 1 < n && (node + 1) * lanes / n <= lane) ++node;
  while (node > 0 && node * lanes / n > lane) --node;
  return node;
}

int NumaTopology::CpuOfLane(size_t lane, size_t lanes) const {
  const size_t node = NodeOfLane(lane, lanes);
  const Node& home = nodes_[node];
  const size_t group_first = node * lanes / nodes_.size();
  const size_t within = lane - group_first;
  return home.cpus[within % home.cpus.size()];
}

bool NumaPlacementEnabled() {
  const char* env = std::getenv("P2PAQP_NUMA");
  if (env != nullptr && std::atol(env) == 0) return false;
  return NumaTopology::Probed().multi_node();
}

}  // namespace p2paqp::util

// NUMA topology probing and deterministic lane placement.
//
// On a multi-socket host, a static-partition parallel region wants lane l's
// worker pinned to the node that holds the pages lane l first-touched: the
// PeerStore blocks a lane initializes, the event-shard slabs it reserves,
// and the CSR pages it warms then stay node-local for the lifetime of the
// world. This header answers exactly two questions, both deterministically:
// which node does lane l of L belong to, and which CPU should host it.
//
// Probing order:
//   1. libnuma, when the build found it (P2PAQP_HAVE_LIBNUMA) and
//      numa_available() succeeds;
//   2. sysfs (/sys/devices/system/node/node*/cpulist) on Linux;
//   3. a single synthetic node covering CPUs [0, hardware_concurrency) —
//      the deterministic fallback, also used when the P2PAQP_NUMA knob
//      disables placement.
//
// Placement NEVER changes results. The deterministic parallel layer's
// contract (util/parallel.h) holds with NUMA placement on or off:
// lane -> node -> CPU affects only where a lane executes and which node
// backs the pages it touches first, never what it computes.
//
// Knobs: P2PAQP_NUMA=0 forces the single-node fallback (placement off);
// unset or any other value uses the probed topology. Read once per process
// (the topology is immutable hardware state).
#ifndef P2PAQP_UTIL_NUMA_H_
#define P2PAQP_UTIL_NUMA_H_

#include <cstddef>
#include <vector>

namespace p2paqp::util {

// Immutable snapshot of the host's NUMA layout.
class NumaTopology {
 public:
  // One memory node and the CPUs local to it (sorted ascending).
  struct Node {
    int id = 0;
    std::vector<int> cpus;
  };

  // The probed hardware topology (libnuma -> sysfs -> single-node).
  // Probed once; subsequent calls return the cached snapshot.
  static const NumaTopology& Probed();

  // The topology parallel regions should place against: Probed() when the
  // P2PAQP_NUMA knob allows it, the single-node fallback otherwise.
  static const NumaTopology& Effective();

  // A synthetic single node spanning `num_cpus` CPUs (>= 1). Exposed so
  // tests can exercise placement math without multi-socket hardware.
  static NumaTopology SingleNode(size_t num_cpus);

  // A topology from an explicit node list (CPU-less nodes already dropped).
  // Exposed for tests; the probers use it internally.
  static NumaTopology FromNodes(std::vector<Node> nodes);

  size_t num_nodes() const { return nodes_.size(); }
  bool multi_node() const { return nodes_.size() > 1; }
  const std::vector<Node>& nodes() const { return nodes_; }
  size_t num_cpus() const { return num_cpus_; }

  // Deterministic lane -> node map for a region of `lanes` lanes: lanes
  // split into contiguous per-node groups (node k owns lanes
  // [k*lanes/N, (k+1)*lanes/N)), mirroring how Partition::kStatic splits
  // the index space into contiguous per-lane ranges — so neighboring
  // indices land on one node.
  size_t NodeOfLane(size_t lane, size_t lanes) const;

  // Deterministic CPU for lane l of `lanes`: round-robins the lane's
  // position within its node group across that node's CPU list.
  int CpuOfLane(size_t lane, size_t lanes) const;

 private:
  std::vector<Node> nodes_;
  size_t num_cpus_ = 1;
};

// False iff P2PAQP_NUMA=0 (or the probed topology has a single node, in
// which case placement is a no-op anyway). When false, Effective() is the
// single-node fallback and lane pinning degenerates to lane % num_cpus —
// byte-for-byte the pre-NUMA pinning behavior.
bool NumaPlacementEnabled();

}  // namespace p2paqp::util

#endif  // P2PAQP_UTIL_NUMA_H_

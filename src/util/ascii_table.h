// Fixed-width ASCII table printer used by the experiment harness to emit the
// rows/series the paper's figures report.
#ifndef P2PAQP_UTIL_ASCII_TABLE_H_
#define P2PAQP_UTIL_ASCII_TABLE_H_

#include <string>
#include <vector>

namespace p2paqp::util {

// Collects rows of string cells and renders them with aligned columns.
class AsciiTable {
 public:
  explicit AsciiTable(std::vector<std::string> header);

  void AddRow(std::vector<std::string> cells);

  // Convenience cell formatters.
  static std::string FormatDouble(double value, int precision = 3);
  static std::string FormatPercent(double fraction, int precision = 2);
  static std::string FormatInt(int64_t value);

  // Renders with a header rule, e.g.
  //   col_a     col_b
  //   -------   -----
  //   1.00      2
  std::string ToString() const;

  // Comma-separated rendering (header + rows) for machine consumption.
  std::string ToCsv() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace p2paqp::util

#endif  // P2PAQP_UTIL_ASCII_TABLE_H_

// Walker's alias method for repeated draws from a fixed discrete
// distribution: O(n) preprocessing, O(1) per draw.
//
// Rng::WeightedIndex is O(n) per draw (it rebuilds the prefix scan every
// call) and ZipfGenerator's CDF search is O(log n); both are hot when every
// generated tuple and every stationary-oracle draw goes through them. The
// alias table trades one linear build for constant-time draws that consume
// exactly ONE uniform double per sample, matching the CDF path's stream
// consumption so interleaved consumers of the same Rng stay aligned.
#ifndef P2PAQP_UTIL_ALIAS_TABLE_H_
#define P2PAQP_UTIL_ALIAS_TABLE_H_

#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace p2paqp::util {

class AliasTable {
 public:
  // Builds the table for P(i) proportional to weights[i]. Requires a
  // non-empty vector of finite, non-negative weights with a positive sum
  // (CHECK-failure otherwise, mirroring Rng::WeightedIndex's contract).
  explicit AliasTable(const std::vector<double>& weights);

  size_t size() const { return prob_.size(); }

  // Index in [0, size()) with P(i) proportional to the build weights.
  // Consumes exactly one uniform double from `rng`.
  size_t Sample(Rng& rng) const;

 private:
  // Bucket i accepts itself with probability prob_[i], otherwise redirects
  // to alias_[i].
  std::vector<double> prob_;
  std::vector<uint32_t> alias_;
};

}  // namespace p2paqp::util

#endif  // P2PAQP_UTIL_ALIAS_TABLE_H_

#include "util/rng.h"

#include <algorithm>
#include <cmath>

#include "util/alias_table.h"

namespace p2paqp::util {

uint64_t MixSeed(uint64_t seed) {
  // splitmix64 finalizer (Steele et al.); spreads low-entropy seeds.
  uint64_t z = seed + 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  P2PAQP_CHECK_LE(lo, hi);
  return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
}

size_t Rng::UniformIndex(size_t n) {
  P2PAQP_CHECK_GT(n, 0u);
  return std::uniform_int_distribution<size_t>(0, n - 1)(engine_);
}

double Rng::UniformDouble(double lo, double hi) {
  return std::uniform_real_distribution<double>(lo, hi)(engine_);
}

bool Rng::Bernoulli(double p) {
  p = std::clamp(p, 0.0, 1.0);
  return std::bernoulli_distribution(p)(engine_);
}

double Rng::Gaussian(double mean, double stddev) {
  return std::normal_distribution<double>(mean, stddev)(engine_);
}

int64_t Rng::Geometric(double p) {
  P2PAQP_CHECK(p > 0.0 && p <= 1.0) << p;
  return std::geometric_distribution<int64_t>(p)(engine_);
}

size_t Rng::WeightedIndex(const std::vector<double>& weights) {
  P2PAQP_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    P2PAQP_CHECK_GE(w, 0.0);
    total += w;
  }
  P2PAQP_CHECK_GT(total, 0.0);
  double target = UniformDouble(0.0, total);
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (target < acc) return i;
  }
  return weights.size() - 1;  // Floating-point slack.
}

size_t Rng::WeightedIndex(const AliasTable& table) {
  return table.Sample(*this);
}

void Rng::SampleIndicesInto(size_t n, size_t k, SampleScratch* scratch,
                            std::vector<size_t>* out) {
  P2PAQP_CHECK_LE(k, n);
  out->clear();
  if (k == 0) return;
  if (out->capacity() < k) out->reserve(k);
  if (k * 3 >= n) {
    // Dense case: partial Fisher-Yates over the identity permutation.
    std::vector<size_t>& all = scratch->identity;
    all.resize(n);
    for (size_t i = 0; i < n; ++i) all[i] = i;
    for (size_t i = 0; i < k; ++i) {
      size_t j = i + UniformIndex(n - i);
      std::swap(all[i], all[j]);
      out->push_back(all[i]);
    }
    return;
  }
  // Sparse case: rejection sampling. The membership structure only affects
  // cost, never the accept/reject decision, so the consumed stream matches
  // the old hash-set implementation draw for draw. Small k scans the output
  // so far (k^2/2 compares, no storage beyond `out`); larger k uses
  // generation-stamped marks, which reset in O(1) per call once the stamp
  // vector is warm. The k*k threshold keeps the stamp resize (O(n), paid
  // once per scratch) from dominating small samples out of huge domains.
  if (k * k <= n) {
    while (out->size() < k) {
      size_t candidate = UniformIndex(n);
      if (std::find(out->begin(), out->end(), candidate) != out->end()) {
        continue;
      }
      out->push_back(candidate);
    }
    return;
  }
  std::vector<uint32_t>& stamp = scratch->stamp;
  if (stamp.size() < n) stamp.resize(n, 0);
  if (++scratch->generation == 0) {
    std::fill(stamp.begin(), stamp.end(), 0);
    scratch->generation = 1;
  }
  const uint32_t gen = scratch->generation;
  while (out->size() < k) {
    size_t candidate = UniformIndex(n);
    if (stamp[candidate] == gen) continue;
    stamp[candidate] = gen;
    out->push_back(candidate);
  }
}

std::vector<size_t> Rng::SampleIndices(size_t n, size_t k) {
  SampleScratch scratch;
  std::vector<size_t> out;
  SampleIndicesInto(n, k, &scratch, &out);
  return out;
}

Rng Rng::Fork() { return Rng(engine_()); }

}  // namespace p2paqp::util

#include "util/parallel.h"

#include <atomic>
#include <cstdlib>
#include <exception>
#include <limits>

#include "util/logging.h"
#include "util/numa.h"

#ifdef __linux__
#include <pthread.h>
#include <sched.h>
#endif

namespace p2paqp::util {

namespace {

thread_local bool tls_in_parallel_worker = false;

}  // namespace

size_t ParallelThreads() {
  const char* env = std::getenv("P2PAQP_THREADS");
  if (env != nullptr) {
    long parsed = std::atol(env);
    if (parsed > 0) return static_cast<size_t>(parsed);
  }
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<size_t>(hw);
}

bool PinThreadsEnabled() {
  const char* env = std::getenv("P2PAQP_PIN_THREADS");
  return env != nullptr && std::atol(env) > 0;
}

bool InParallelWorker() { return tls_in_parallel_worker; }

// Shared state for one Run()/RunStatic(): dynamic batches claim indices from
// `next` until it passes `n`; static batches give lane l to one fixed thread.
// Either way completions count in `done` and the lowest-indexed exception is
// recorded under `mu`.
struct ThreadPool::Batch {
  size_t n = 0;
  const std::function<void(size_t)>* fn = nullptr;
  bool is_static = false;
  uint64_t seq = 0;  // Distinguishes batches so a thread runs each once.
  std::atomic<size_t> next{0};
  std::atomic<size_t> done{0};
  std::mutex mu;
  size_t first_error_index = std::numeric_limits<size_t>::max();
  std::exception_ptr error;

  void RecordError(size_t index) {
    std::lock_guard<std::mutex> lock(mu);
    if (index < first_error_index) {
      first_error_index = index;
      error = std::current_exception();
    }
  }

  // Claims and runs tasks until the index space is exhausted. A throwing
  // task still counts as done — remaining tasks keep running, and the
  // lowest-indexed exception wins, so error reporting is as deterministic
  // as the results.
  void Drain() {
    while (true) {
      size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        (*fn)(i);
      } catch (...) {
        RecordError(i);
      }
      done.fetch_add(1, std::memory_order_acq_rel);
    }
  }

  // Static mode: runs exactly `lane`, the caller's fixed assignment. A
  // throwing lane abandons its own remaining work but every other lane
  // still runs; the lowest-indexed throwing lane wins.
  void DrainLane(size_t lane) {
    if (lane >= n) return;
    try {
      (*fn)(lane);
    } catch (...) {
      RecordError(lane);
    }
    done.fetch_add(1, std::memory_order_acq_rel);
  }

  bool AllDone() const {
    return done.load(std::memory_order_acquire) == n;
  }
};

ThreadPool::ThreadPool(size_t num_threads, bool pin) {
  P2PAQP_CHECK_GT(num_threads, 0u);
  // On multi-socket hosts pinning engages automatically (P2PAQP_NUMA=0
  // opts out): without it the kernel migrates workers across nodes and the
  // first-touch placement of PeerStore blocks / event-shard slabs is
  // wasted. Single-node hosts keep pinning opt-in via `pin`.
  pin = pin || NumaPlacementEnabled();
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
#ifdef __linux__
    if (pin) {
      // Worker i hosts static lane i+1; lane 0 stays on the (unpinned)
      // caller. One core per lane keeps a lane's PeerStore blocks and
      // arenas resident in that core's cache across regions; the topology
      // maps contiguous lane groups onto NUMA nodes (a single-node
      // topology degenerates to lane % ncpu, the pre-NUMA behavior).
      const NumaTopology& topo = NumaTopology::Effective();
      if (topo.num_cpus() > 1) {
        cpu_set_t set;
        CPU_ZERO(&set);
        CPU_SET(topo.CpuOfLane(i + 1, num_threads + 1), &set);
        pthread_setaffinity_np(workers_.back().native_handle(), sizeof(set),
                               &set);
      }
    }
#else
    (void)pin;
#endif
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::WorkerLoop(size_t worker_index) {
  tls_in_parallel_worker = true;
  uint64_t last_seq = 0;
  while (true) {
    Batch* batch = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] {
        return stop_ || (batch_ != nullptr && batch_->seq != last_seq);
      });
      if (batch_ == nullptr || batch_->seq == last_seq) {
        return;  // stop_ and nothing new to drain.
      }
      batch = batch_;
      last_seq = batch->seq;
      ++active_workers_;
    }
    if (batch->is_static) {
      batch->DrainLane(worker_index + 1);
    } else {
      batch->Drain();
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      // Dynamic drains only return once the index space is exhausted; a
      // static batch is finished when every lane has reported done. Either
      // way, stop handing the batch to late-waking threads.
      if (batch_ == batch && (!batch->is_static || batch->AllDone())) {
        batch_ = nullptr;
      }
      --active_workers_;
    }
    idle_cv_.notify_all();
  }
}

void ThreadPool::Run(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  Batch batch;
  batch.n = n;
  batch.fn = &fn;
  {
    std::lock_guard<std::mutex> lock(mu_);
    P2PAQP_CHECK(batch_ == nullptr) << "concurrent ThreadPool::Run calls";
    batch.seq = ++next_batch_seq_;
    batch_ = &batch;
  }
  work_cv_.notify_all();
  // The caller drains alongside the workers, so a pool of T threads gives a
  // parallel region T+1 lanes and small batches finish without a context
  // switch.
  batch.Drain();
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (batch_ == &batch) batch_ = nullptr;
    // Wait until every claimed task has finished AND no worker still holds
    // a pointer to the (stack-allocated) batch.
    idle_cv_.wait(lock, [&] {
      return active_workers_ == 0 && batch.AllDone();
    });
  }
  if (batch.error) std::rethrow_exception(batch.error);
}

void ThreadPool::RunStatic(size_t lanes,
                           const std::function<void(size_t)>& fn) {
  if (lanes == 0) return;
  P2PAQP_CHECK_LE(lanes, workers_.size() + 1)
      << "static lanes exceed pool width";
  Batch batch;
  batch.n = lanes;
  batch.fn = &fn;
  batch.is_static = true;
  {
    std::lock_guard<std::mutex> lock(mu_);
    P2PAQP_CHECK(batch_ == nullptr) << "concurrent ThreadPool::Run calls";
    batch.seq = ++next_batch_seq_;
    batch_ = &batch;
  }
  work_cv_.notify_all();
  batch.DrainLane(0);  // The caller is lane 0.
  {
    std::unique_lock<std::mutex> lock(mu_);
    idle_cv_.wait(lock, [&] {
      return active_workers_ == 0 && batch.AllDone();
    });
    if (batch_ == &batch) batch_ = nullptr;
  }
  if (batch.error) std::rethrow_exception(batch.error);
}

void ThreadPool::RunStaticRanges(
    size_t n, const std::function<void(size_t, size_t, size_t)>& fn) {
  const size_t lanes = workers_.size() + 1;
  RunStatic(lanes, [&fn, n, lanes](size_t lane) {
    // Contiguous per-lane ranges: lane l always owns the same indices for a
    // given (n, lanes), running on the same (optionally pinned) thread
    // every region — the one place this formula lives.
    fn(lane, lane * n / lanes, (lane + 1) * n / lanes);
  });
}

void ParallelFor(size_t n, const std::function<void(size_t)>& fn,
                 const ParallelOptions& options) {
  size_t threads = options.threads != 0 ? options.threads : ParallelThreads();
  if (threads > n) threads = n;
  if (threads <= 1 || InParallelWorker()) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  // The caller participates in the drain, so spawn one fewer worker than
  // the requested concurrency.
  ThreadPool pool(threads - 1, PinThreadsEnabled());
  if (options.partition == Partition::kStatic) {
    pool.RunStaticRanges(n, [&fn](size_t, size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) fn(i);
    });
  } else {
    pool.Run(n, fn);
  }
}

Rng TaskRng(uint64_t base_seed, size_t index) {
  return Rng(MixSeed(
      base_seed ^ (0x9E3779B97F4A7C15ULL * (static_cast<uint64_t>(index) + 1))));
}

}  // namespace p2paqp::util

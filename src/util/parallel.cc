#include "util/parallel.h"

#include <atomic>
#include <cstdlib>
#include <exception>
#include <limits>

#include "util/logging.h"

namespace p2paqp::util {

namespace {

thread_local bool tls_in_parallel_worker = false;

}  // namespace

size_t ParallelThreads() {
  const char* env = std::getenv("P2PAQP_THREADS");
  if (env != nullptr) {
    long parsed = std::atol(env);
    if (parsed > 0) return static_cast<size_t>(parsed);
  }
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<size_t>(hw);
}

bool InParallelWorker() { return tls_in_parallel_worker; }

// Shared state for one Run(): workers claim indices from `next` until it
// passes `n`, count completions in `done`, and record the lowest-indexed
// exception under `mu`.
struct ThreadPool::Batch {
  size_t n = 0;
  const std::function<void(size_t)>* fn = nullptr;
  std::atomic<size_t> next{0};
  std::atomic<size_t> done{0};
  std::mutex mu;
  size_t first_error_index = std::numeric_limits<size_t>::max();
  std::exception_ptr error;

  // Claims and runs tasks until the index space is exhausted. A throwing
  // task still counts as done — remaining tasks keep running, and the
  // lowest-indexed exception wins, so error reporting is as deterministic
  // as the results.
  void Drain() {
    while (true) {
      size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        (*fn)(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mu);
        if (i < first_error_index) {
          first_error_index = i;
          error = std::current_exception();
        }
      }
      done.fetch_add(1, std::memory_order_acq_rel);
    }
  }

  bool AllDone() const {
    return done.load(std::memory_order_acquire) == n;
  }
};

ThreadPool::ThreadPool(size_t num_threads) {
  P2PAQP_CHECK_GT(num_threads, 0u);
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::WorkerLoop() {
  tls_in_parallel_worker = true;
  while (true) {
    Batch* batch = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || batch_ != nullptr; });
      if (batch_ == nullptr) return;  // stop_ and nothing left to drain.
      batch = batch_;
      ++active_workers_;
    }
    batch->Drain();
    {
      std::lock_guard<std::mutex> lock(mu_);
      // Drain only returns once the index space is exhausted; stop handing
      // the batch to late-waking workers.
      if (batch_ == batch) batch_ = nullptr;
      --active_workers_;
    }
    idle_cv_.notify_all();
  }
}

void ThreadPool::Run(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  Batch batch;
  batch.n = n;
  batch.fn = &fn;
  {
    std::lock_guard<std::mutex> lock(mu_);
    P2PAQP_CHECK(batch_ == nullptr) << "concurrent ThreadPool::Run calls";
    batch_ = &batch;
  }
  work_cv_.notify_all();
  // The caller drains alongside the workers, so a pool of T threads gives a
  // parallel region T+1 lanes and small batches finish without a context
  // switch.
  batch.Drain();
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (batch_ == &batch) batch_ = nullptr;
    // Wait until every claimed task has finished AND no worker still holds
    // a pointer to the (stack-allocated) batch.
    idle_cv_.wait(lock, [&] {
      return active_workers_ == 0 && batch.AllDone();
    });
  }
  if (batch.error) std::rethrow_exception(batch.error);
}

void ParallelFor(size_t n, const std::function<void(size_t)>& fn,
                 const ParallelOptions& options) {
  size_t threads = options.threads != 0 ? options.threads : ParallelThreads();
  if (threads > n) threads = n;
  if (threads <= 1 || InParallelWorker()) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  // The caller participates in the drain, so spawn one fewer worker than
  // the requested concurrency.
  ThreadPool pool(threads - 1);
  pool.Run(n, fn);
}

Rng TaskRng(uint64_t base_seed, size_t index) {
  return Rng(MixSeed(
      base_seed ^ (0x9E3779B97F4A7C15ULL * (static_cast<uint64_t>(index) + 1))));
}

}  // namespace p2paqp::util

#include "util/ascii_table.h"

#include <cstdio>

#include "util/logging.h"

namespace p2paqp::util {

AsciiTable::AsciiTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  P2PAQP_CHECK(!header_.empty());
}

void AsciiTable::AddRow(std::vector<std::string> cells) {
  P2PAQP_CHECK_EQ(cells.size(), header_.size());
  rows_.push_back(std::move(cells));
}

std::string AsciiTable::FormatDouble(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string AsciiTable::FormatPercent(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
  return buf;
}

std::string AsciiTable::FormatInt(int64_t value) {
  return std::to_string(value);
}

std::string AsciiTable::ToString() const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (size_t c = 0; c < row.size(); ++c) {
      line += row[c];
      if (c + 1 < row.size()) {
        line.append(widths[c] - row[c].size() + 3, ' ');
      }
    }
    line += '\n';
    return line;
  };
  std::string out = render_row(header_);
  std::vector<std::string> rule(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) {
    rule[c] = std::string(widths[c], '-');
  }
  out += render_row(rule);
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

std::string AsciiTable::ToCsv() const {
  auto render = [](const std::vector<std::string>& row) {
    std::string line;
    for (size_t c = 0; c < row.size(); ++c) {
      line += row[c];
      if (c + 1 < row.size()) line += ',';
    }
    line += '\n';
    return line;
  };
  std::string out = render(header_);
  for (const auto& row : rows_) out += render(row);
  return out;
}

}  // namespace p2paqp::util

// Cross-validation sizing of the second phase (Sec. 3.4, Theorem 3).
//
// The phase-I sample is split into random halves; the gap between the two
// half-sample estimates obeys E[CVError^2] = 2 E[err^2], so the measured gap
// calibrates how many peers phase II must visit for the requested accuracy.
// Because the CV error over-states the true error, the resulting plan is
// conservative — exactly the behaviour the paper reports.
#ifndef P2PAQP_CORE_CROSS_VALIDATION_H_
#define P2PAQP_CORE_CROSS_VALIDATION_H_

#include <cstddef>
#include <vector>

#include "core/estimator.h"
#include "util/rng.h"

namespace p2paqp::core {

struct CrossValidationResult {
  // Full-sample Horvitz-Thompson estimate (all m observations).
  double estimate = 0.0;
  // Root of the average squared half-vs-half gap |y1'' - y2''| across
  // `repeats` random halvings, in the aggregate's units.
  double cv_error = 0.0;
  // cv_error / |estimate| (0 when the estimate is 0): the normalized form
  // compared against the user's required_error.
  double cv_error_relative = 0.0;
};

// Requires at least two observations. `repeats` >= 1 random halvings are
// averaged (in squared error) for robustness, per Sec. 4 ("steps 2-4 ...
// can be repeated a few times").
CrossValidationResult CrossValidate(
    const std::vector<WeightedObservation>& observations, double total_weight,
    size_t repeats, util::Rng& rng);

// The paper's phase-II sizing rule m' = (m/2) * (CVError / delta_req)^2 with
// CVError and delta_req in the same (relative) units, clamped to
// [min_peers, max_peers].
size_t PhaseTwoSampleSize(size_t phase1_peers, double cv_error_relative,
                          double required_error, size_t min_peers,
                          size_t max_peers);

}  // namespace p2paqp::core

#endif  // P2PAQP_CORE_CROSS_VALIDATION_H_

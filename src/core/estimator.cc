#include "core/estimator.h"

#include "util/logging.h"
#include "util/statistics.h"

namespace p2paqp::core {

namespace {

// Per-peer estimate value/prob = value * total_weight / weight.
double PerPeerEstimate(const WeightedObservation& obs, double total_weight) {
  if (obs.weight <= 0.0) return 0.0;
  return obs.value * total_weight / obs.weight;
}

}  // namespace

double HorvitzThompson(const std::vector<WeightedObservation>& observations,
                       double total_weight) {
  P2PAQP_CHECK(!observations.empty());
  P2PAQP_CHECK_GT(total_weight, 0.0);
  double sum = 0.0;
  for (const WeightedObservation& obs : observations) {
    sum += PerPeerEstimate(obs, total_weight);
  }
  return sum / static_cast<double>(observations.size());
}

double HorvitzThompsonVariance(
    const std::vector<WeightedObservation>& observations,
    double total_weight) {
  if (observations.size() < 2) return 0.0;
  util::RunningStat stat;
  for (const WeightedObservation& obs : observations) {
    stat.Add(PerPeerEstimate(obs, total_weight));
  }
  return stat.variance() / static_cast<double>(observations.size());
}

double EstimateBadnessC(const std::vector<WeightedObservation>& observations,
                        double total_weight) {
  return HorvitzThompsonVariance(observations, total_weight) *
         static_cast<double>(observations.size());
}

}  // namespace p2paqp::core

// Decentralized estimation of the preprocessed catalog.
//
// The paper assumes every peer knows M, |E| and walk tuning, and waves the
// estimation off as "interesting problems in their own right" (Sec. 1). This
// module closes that gap with two classical random-walk estimators a sink
// can run with zero global knowledge:
//
//  * |E| via RETURN TIMES: for a reversible chain the expected time for a
//    walker to return to its start s is 1/pi(s) = 2|E|/deg(s), and deg(s)
//    is locally known. Averaging R independent return times gives
//    |E|_hat = deg(s) * mean(T_return) / 2.
//
//  * M via BIRTHDAY COLLISIONS: k near-uniform peer samples (a
//    Metropolis-Hastings walk makes the stationary distribution uniform)
//    contain on expectation k(k-1)/(2M) pairwise collisions, so
//    M_hat = k(k-1) / (2 * #collisions).
//
// Accuracy matters directly: the Horvitz-Thompson normalizer is 2|E|, so a
// b% error in |E|_hat becomes a b% multiplicative bias on COUNT/SUM
// estimates (tested in DecentralizedCatalogTest.BiasTracksEdgeError).
#ifndef P2PAQP_CORE_DECENTRALIZED_CATALOG_H_
#define P2PAQP_CORE_DECENTRALIZED_CATALOG_H_

#include "core/catalog.h"
#include "net/network.h"
#include "util/rng.h"
#include "util/status.h"

namespace p2paqp::core {

struct DecentralizedConfig {
  // Return-time walks for the edge estimate. Mean return time is
  // 2|E|/deg(sink) hops, so the total hop bill is ~ walks * 2|E|/deg(sink);
  // medians of means over `walks` runs tame the heavy return-time tail.
  size_t return_walks = 32;
  // Hard per-walk cap (0 = automatic).
  size_t max_hops_per_walk = 0;
  // Uniform (Metropolis-Hastings) samples for the birthday estimate; needs
  // roughly sqrt(20 M) samples for ~10 expected collisions.
  size_t birthday_samples = 600;
  size_t birthday_jump = 10;
  // Walk tuning copied into the resulting catalog.
  size_t suggested_jump = 10;
  size_t suggested_burn_in = 50;
};

struct DecentralizedEstimates {
  SystemCatalog catalog;      // num_peers/num_edges/average_degree estimated.
  size_t collisions = 0;      // Birthday collisions observed.
  double mean_return_time = 0.0;
  net::CostSnapshot cost;     // Hops/messages the estimation itself spent.
};

// Estimates |E| from return times of walks started at `sink`.
// Unavailable if walks repeatedly exceed the hop cap (disconnected or
// pathological overlays).
util::Result<double> EstimateEdgesViaReturnTimes(
    net::SimulatedNetwork& network, graph::NodeId sink,
    const DecentralizedConfig& config, util::Rng& rng);

// Estimates M from pairwise collisions among uniform MH samples.
// Unavailable when no collision is observed (sample too small for the
// network — caller should raise birthday_samples). `collisions_out`
// (optional) receives the observed collision count.
util::Result<double> EstimatePeersViaCollisions(
    net::SimulatedNetwork& network, graph::NodeId sink,
    const DecentralizedConfig& config, util::Rng& rng,
    size_t* collisions_out = nullptr);

// Runs both estimators and assembles a catalog usable by TwoPhaseEngine.
util::Result<DecentralizedEstimates> DecentralizedPreprocess(
    net::SimulatedNetwork& network, graph::NodeId sink,
    const DecentralizedConfig& config, util::Rng& rng);

}  // namespace p2paqp::core

#endif  // P2PAQP_CORE_DECENTRALIZED_CATALOG_H_

#include "core/catalog.h"

#include <cstdio>

#include "sampling/convergence.h"

namespace p2paqp::core {

std::string SystemCatalog::ToString() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "M=%zu |E|=%zu avg_deg=%.2f lambda2=%.4f burn_in=%zu jump=%zu",
                num_peers, num_edges, average_degree, lambda2,
                suggested_burn_in, suggested_jump);
  return buf;
}

SystemCatalog Preprocess(const graph::Graph& graph, double epsilon,
                         util::Rng& rng) {
  SystemCatalog catalog;
  catalog.num_peers = graph.num_nodes();
  catalog.num_edges = graph.num_edges();
  catalog.average_degree = graph.average_degree();
  sampling::WalkTuning tuning = sampling::TuneWalk(graph, epsilon, 1, rng);
  catalog.lambda2 = tuning.lambda2;
  catalog.suggested_burn_in = tuning.burn_in;
  catalog.suggested_jump = tuning.jump;
  return catalog;
}

SystemCatalog MakeLiveCatalog(const net::SimulatedNetwork& network,
                              size_t jump, size_t burn_in) {
  SystemCatalog catalog;
  catalog.num_peers = network.num_alive();
  size_t live_degree_sum = 0;
  for (graph::NodeId p = 0; p < network.num_peers(); ++p) {
    if (network.IsAlive(p)) live_degree_sum += network.AliveDegree(p);
  }
  catalog.num_edges = live_degree_sum / 2;
  catalog.average_degree =
      catalog.num_peers == 0
          ? 0.0
          : static_cast<double>(live_degree_sum) /
                static_cast<double>(catalog.num_peers);
  catalog.suggested_jump = jump;
  catalog.suggested_burn_in = burn_in;
  return catalog;
}

SystemCatalog MakeCatalog(const graph::Graph& graph, size_t jump,
                          size_t burn_in) {
  SystemCatalog catalog;
  catalog.num_peers = graph.num_nodes();
  catalog.num_edges = graph.num_edges();
  catalog.average_degree = graph.average_degree();
  catalog.suggested_burn_in = burn_in;
  catalog.suggested_jump = jump;
  return catalog;
}

}  // namespace p2paqp::core

// Biased sampling extension (the paper's future-work question: "Is it
// possible for sampling-based algorithms to perform 'biased sampling', i.e.,
// focus the samples from regions of the database where tuples that satisfy
// the query are likely to exist?").
//
// Each peer advertises a one-number synopsis: the fraction of its tuples
// matching the predicate (in a deployment this comes from a per-peer value
// histogram). The walker chooses the next hop proportionally to
// c(v) = floor + match_fraction(v), steering toward data-rich regions.
//
// Because transition weights factor as w(u,v) = c(u)c(v), the walk is a
// reversible Markov chain with stationary weight
//   pi(p)  proportional to  c(p) * sum_{v in N(p)} c(v),
// which each peer computes locally and ships with its reply — so the sink
// can de-bias exactly using a self-normalized Horvitz-Thompson ratio
// (the global normalizer is unknown; M from the catalog anchors the scale).
#ifndef P2PAQP_CORE_BIASED_H_
#define P2PAQP_CORE_BIASED_H_

#include <memory>
#include <vector>

#include "core/two_phase.h"
#include "sampling/samplers.h"

namespace p2paqp::core {

// Walker that biases hops toward predicate-matching neighborhoods.
class BiasedWalkSampler : public sampling::PeerSampler {
 public:
  // `floor` > 0 keeps every neighbor reachable (irreducibility); higher
  // floors mean weaker bias. Synopses are computed once per query from the
  // live databases — the stand-in for peers' advertised histograms.
  BiasedWalkSampler(net::SimulatedNetwork* network,
                    const query::RangePredicate& predicate, size_t jump,
                    double floor);

  util::Result<std::vector<sampling::PeerVisit>> SamplePeers(
      graph::NodeId sink, size_t count, util::Rng& rng) override;

  // Exact stationary weight c(p) * sum of neighbor synopses.
  double StationaryWeight(graph::NodeId node) const override;

  std::string name() const override { return "biased_walk"; }

  // Sum of StationaryWeight over all peers — the exact normalizer. A real
  // sink cannot compute this (it is exposed for validation); production use
  // goes through EstimateBiased below, which self-normalizes instead.
  double ExactTotalWeight() const;

 private:
  net::SimulatedNetwork* network_;
  size_t jump_;
  std::vector<double> synopsis_;  // c(p) per peer.
};

// Self-normalized estimate from biased-walk observations:
//   y_hat = M * sum(y_i / w_i) / sum(1 / w_i),
// consistent without knowing the normalizer (bias O(1/m)).
double SelfNormalizedEstimate(const std::vector<PeerObservation>& observations,
                              size_t num_peers, query::AggregateOp op);

struct BiasedAnswer {
  double estimate = 0.0;
  size_t peers_visited = 0;
  net::CostSnapshot cost;
};

// One-shot biased estimate with a fixed peer budget (the extension is a
// cost-focusing heuristic; it reuses the fixed budget the caller measured
// with the unbiased engine to show the variance win on selective queries).
util::Result<BiasedAnswer> EstimateBiased(net::SimulatedNetwork* network,
                                          const SystemCatalog& catalog,
                                          const query::AggregateQuery& query,
                                          graph::NodeId sink, size_t num_peers,
                                          uint64_t tuples_per_peer,
                                          double floor, util::Rng& rng);

}  // namespace p2paqp::core

#endif  // P2PAQP_CORE_BIASED_H_

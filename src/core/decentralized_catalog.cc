#include "core/decentralized_catalog.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <vector>

#include "sampling/random_walk.h"
#include "util/statistics.h"

namespace p2paqp::core {

namespace {

// One unbounded-until-cap walk from `sink` back to `sink`; returns the hop
// count or 0 on cap exhaustion.
size_t OneReturnTime(net::SimulatedNetwork& network, graph::NodeId sink,
                     size_t max_hops, util::Rng& rng) {
  graph::NodeId current = sink;
  for (size_t hops = 1; hops <= max_hops; ++hops) {
    std::vector<graph::NodeId> neighbors = network.AliveNeighbors(current);
    if (neighbors.empty()) {
      if (current == sink) return 0;
      current = sink;  // Stranded: re-issue; the attempt keeps its count.
      continue;
    }
    graph::NodeId next = neighbors[rng.UniformIndex(neighbors.size())];
    if (!network.SendAlongEdge(net::MessageType::kWalker, current, next)
             .ok()) {
      return 0;
    }
    current = next;
    if (current == sink) return hops;
  }
  return 0;
}

}  // namespace

util::Result<double> EstimateEdgesViaReturnTimes(
    net::SimulatedNetwork& network, graph::NodeId sink,
    const DecentralizedConfig& config, util::Rng& rng) {
  if (sink >= network.num_peers() || !network.IsAlive(sink)) {
    return util::Status::FailedPrecondition("sink peer is not live");
  }
  uint32_t sink_degree = network.AliveDegree(sink);
  if (sink_degree == 0) {
    return util::Status::Unavailable("sink is isolated");
  }
  size_t cap = config.max_hops_per_walk;
  if (cap == 0) {
    // Generously above the expected 2|E|/deg(sink); even without knowing
    // |E|, M * avg_deg / deg(sink) is bounded by M * max_deg — use a large
    // multiple of the network size as a heuristic ceiling.
    cap = 200 * std::max<size_t>(network.num_peers(), 1000);
  }
  // Heavy right tail: use median-of-means over small batches.
  std::vector<double> batch_means;
  util::RunningStat batch;
  size_t completed = 0;
  for (size_t walk = 0; walk < config.return_walks; ++walk) {
    size_t hops = OneReturnTime(network, sink, cap, rng);
    if (hops == 0) continue;
    ++completed;
    batch.Add(static_cast<double>(hops));
    if (batch.count() == 4) {
      batch_means.push_back(batch.mean());
      batch = util::RunningStat();
    }
  }
  if (batch.count() > 0) batch_means.push_back(batch.mean());
  if (completed < std::max<size_t>(4, config.return_walks / 4)) {
    return util::Status::Unavailable("too many return walks hit the cap");
  }
  double typical_return = util::Median(batch_means);
  return static_cast<double>(sink_degree) * typical_return / 2.0;
}

util::Result<double> EstimatePeersViaCollisions(
    net::SimulatedNetwork& network, graph::NodeId sink,
    const DecentralizedConfig& config, util::Rng& rng,
    size_t* collisions_out) {
  if (config.birthday_samples < 2) {
    return util::Status::InvalidArgument("need at least two samples");
  }
  sampling::RandomWalk walk(
      &network,
      sampling::WalkParams{
          .jump = std::max<size_t>(1, config.birthday_jump),
          .burn_in = 2 * config.birthday_jump,
          .variant = sampling::WalkVariant::kMetropolisHastings});
  auto visits = walk.Collect(sink, config.birthday_samples, rng);
  if (!visits.ok()) return visits.status();
  std::unordered_map<graph::NodeId, size_t> seen;
  for (const sampling::PeerVisit& visit : *visits) ++seen[visit.peer];
  // Pairwise collisions: sum over peers of C(count, 2).
  uint64_t collisions = 0;
  for (const auto& [peer, count] : seen) {
    collisions += count * (count - 1) / 2;
  }
  if (collisions_out != nullptr) {
    *collisions_out = static_cast<size_t>(collisions);
  }
  if (collisions == 0) {
    return util::Status::Unavailable(
        "no collisions observed; raise birthday_samples");
  }
  auto k = static_cast<double>(config.birthday_samples);
  return k * (k - 1.0) / (2.0 * static_cast<double>(collisions));
}

util::Result<DecentralizedEstimates> DecentralizedPreprocess(
    net::SimulatedNetwork& network, graph::NodeId sink,
    const DecentralizedConfig& config, util::Rng& rng) {
  net::CostSnapshot before = network.cost_snapshot();
  auto edges = EstimateEdgesViaReturnTimes(network, sink, config, rng);
  if (!edges.ok()) return edges.status();
  size_t collisions = 0;
  auto peers =
      EstimatePeersViaCollisions(network, sink, config, rng, &collisions);
  if (!peers.ok()) return peers.status();

  DecentralizedEstimates estimates;
  estimates.collisions = collisions;
  estimates.catalog.num_peers =
      static_cast<size_t>(std::llround(std::max(1.0, *peers)));
  estimates.catalog.num_edges =
      static_cast<size_t>(std::llround(std::max(1.0, *edges)));
  estimates.catalog.average_degree =
      2.0 * *edges / std::max(1.0, *peers);
  estimates.catalog.suggested_jump = config.suggested_jump;
  estimates.catalog.suggested_burn_in = config.suggested_burn_in;
  estimates.mean_return_time =
      2.0 * *edges / std::max<double>(1.0, network.AliveDegree(sink));
  estimates.cost = net::CostDelta(network.cost_snapshot(), before);
  return estimates;
}

}  // namespace p2paqp::core

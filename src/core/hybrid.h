// Hybrid pre-computation extension (the paper's future-work question: "Is it
// possible to build hybrid solutions that do some amount of pre-computations
// of samples, in addition to 'on-the-fly' sampling?").
//
// Peers opportunistically cache the local aggregate they computed for a
// query; while the cache entry is fresh (a bounded number of epochs — data
// churn ticks — old), a revisit answers from the cache with zero local I/O.
// The walker cost is unchanged, but repeated/refining queries get cheaper,
// and the staleness window bounds the error the cache can introduce.
#ifndef P2PAQP_CORE_HYBRID_H_
#define P2PAQP_CORE_HYBRID_H_

#include <cstdint>
#include <unordered_map>

#include "core/two_phase.h"

namespace p2paqp::core {

// Epoch-based freshness cache implementing TwoPhaseEngine's cache hook.
class FreshnessCache : public LocalResultCache {
 public:
  // Entries older than `ttl_epochs` epochs are treated as missing.
  explicit FreshnessCache(uint64_t ttl_epochs) : ttl_epochs_(ttl_epochs) {}

  // Advance simulated time; call whenever peer data may have changed
  // (e.g., after a churn step or a data refresh).
  void AdvanceEpoch() { ++epoch_; }
  uint64_t epoch() const { return epoch_; }

  bool Lookup(graph::NodeId peer, const query::AggregateQuery& query,
              query::LocalAggregate* out) override;
  void Store(graph::NodeId peer, const query::AggregateQuery& query,
             const query::LocalAggregate& aggregate) override;

  size_t size() const { return entries_.size(); }
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }

 private:
  struct Entry {
    query::LocalAggregate aggregate;
    uint64_t stored_epoch = 0;
  };

  // Cache key: peer + the query signature that determines the local answer.
  static uint64_t Key(graph::NodeId peer, const query::AggregateQuery& query);

  uint64_t ttl_epochs_;
  uint64_t epoch_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  std::unordered_map<uint64_t, Entry> entries_;
};

}  // namespace p2paqp::core

#endif  // P2PAQP_CORE_HYBRID_H_

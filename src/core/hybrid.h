// Hybrid pre-computation extension (the paper's future-work question: "Is it
// possible to build hybrid solutions that do some amount of pre-computations
// of samples, in addition to 'on-the-fly' sampling?").
//
// Peers opportunistically cache the local aggregate they computed for a
// query; while the cache entry is fresh (a bounded number of epochs — data
// churn ticks — old), a revisit answers from the cache with zero local I/O.
// The walker cost is unchanged, but repeated/refining queries get cheaper,
// and the staleness window bounds the error the cache can introduce.
#ifndef P2PAQP_CORE_HYBRID_H_
#define P2PAQP_CORE_HYBRID_H_

#include <cstdint>
#include <list>
#include <unordered_map>

#include "core/two_phase.h"

namespace p2paqp::core {

// Epoch-based freshness cache implementing TwoPhaseEngine's cache hook.
// Bounded: when `max_entries` > 0, storing beyond the cap evicts the least
// recently used entry (lookups and stores both refresh recency), so a
// long-lived sink multiplexing many query signatures cannot grow without
// bound. Eviction is deterministic — pure LRU order, no hashing involved.
class FreshnessCache : public LocalResultCache {
 public:
  // Entries older than `ttl_epochs` epochs are treated as missing.
  // `max_entries` == 0 means unbounded (the pre-LRU behavior).
  explicit FreshnessCache(uint64_t ttl_epochs, size_t max_entries = 0)
      : ttl_epochs_(ttl_epochs), max_entries_(max_entries) {}

  // Advance simulated time; call whenever peer data may have changed
  // (e.g., after a churn step or a data refresh).
  void AdvanceEpoch() { ++epoch_; }
  uint64_t epoch() const { return epoch_; }

  bool Lookup(graph::NodeId peer, const query::AggregateQuery& query,
              query::LocalAggregate* out) override;
  void Store(graph::NodeId peer, const query::AggregateQuery& query,
             const query::LocalAggregate& aggregate) override;

  size_t size() const { return entries_.size(); }
  size_t max_entries() const { return max_entries_; }
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  uint64_t evictions() const { return evictions_; }

 private:
  struct Entry {
    query::LocalAggregate aggregate;
    uint64_t stored_epoch = 0;
    // Position in lru_ (most recent at the front); only maintained when the
    // cache is bounded.
    std::list<uint64_t>::iterator lru_pos;
  };

  // Cache key: peer + the query signature that determines the local answer.
  static uint64_t Key(graph::NodeId peer, const query::AggregateQuery& query);

  void Touch(Entry& entry);

  uint64_t ttl_epochs_;
  size_t max_entries_;
  uint64_t epoch_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
  std::unordered_map<uint64_t, Entry> entries_;
  std::list<uint64_t> lru_;  // Keys, most recently used first.
};

}  // namespace p2paqp::core

#endif  // P2PAQP_CORE_HYBRID_H_

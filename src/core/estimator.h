// Horvitz-Thompson estimation over stationary-distribution peer samples
// (Sec. 3.4, Theorems 1 and 2).
//
// Each sampled peer s contributes y(s)/prob(s) — its local aggregate scaled
// by the inverse of its selection probability. The mean of these per-peer
// estimates is unbiased for the global aggregate (Theorem 1) and its
// variance is C/m (Theorem 2), where C measures how badly the data is
// clustered across peers.
#ifndef P2PAQP_CORE_ESTIMATOR_H_
#define P2PAQP_CORE_ESTIMATOR_H_

#include <cstddef>
#include <vector>

namespace p2paqp::core {

// One sampled peer, as seen by the sink.
struct WeightedObservation {
  // y(s): the peer's (scaled) local aggregate.
  double value = 0.0;
  // Unnormalized stationary weight w(s); prob(s) = w(s) / total_weight
  // (degree for the simple walk with total 2|E|, 1 with total M for
  // uniform samplers).
  double weight = 1.0;
};

// y'' = (1/m) * sum value_i / prob_i. Observations with weight <= 0 are
// counted in m but contribute 0 (an isolated peer is unreachable anyway).
double HorvitzThompson(const std::vector<WeightedObservation>& observations,
                       double total_weight);

// Unbiased estimate of Var[y''] = C/m: the sample variance of the per-peer
// estimates divided by m. Returns 0 for fewer than two observations.
double HorvitzThompsonVariance(
    const std::vector<WeightedObservation>& observations,
    double total_weight);

// The clustering "badness" C from Theorem 2, i.e. the per-sample variance
// (m times HorvitzThompsonVariance).
double EstimateBadnessC(const std::vector<WeightedObservation>& observations,
                        double total_weight);

}  // namespace p2paqp::core

#endif  // P2PAQP_CORE_ESTIMATOR_H_

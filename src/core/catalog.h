// Preprocessed system catalog (Sec. 1 / Sec. 3.3).
//
// The paper assumes a handful of slow-changing network constants — peer
// count M, edge count |E|, average degree, connectivity (second eigenvalue)
// and the derived walk parameters — are estimated offline and known to all
// peers. Only the fast-changing *data* is sampled at query time.
#ifndef P2PAQP_CORE_CATALOG_H_
#define P2PAQP_CORE_CATALOG_H_

#include <cstddef>
#include <string>

#include "graph/graph.h"
#include "net/network.h"
#include "util/rng.h"

namespace p2paqp::core {

struct SystemCatalog {
  size_t num_peers = 0;       // M.
  size_t num_edges = 0;       // |E|.
  double average_degree = 0.0;
  double lambda2 = 0.0;       // Second eigenvalue of the walk matrix.
  size_t suggested_burn_in = 0;
  size_t suggested_jump = 1;

  // Normalizer for degree-proportional stationary probabilities:
  // prob(p) = deg(p) / (2|E|).
  double total_degree_weight() const {
    return 2.0 * static_cast<double>(num_edges);
  }

  std::string ToString() const;
};

// Runs the offline preprocessing pass over the (assumed slow-changing)
// topology: spectral estimate, mixing-time bound for total-variation
// `epsilon`, jump recommendation. Deterministic given `rng`.
SystemCatalog Preprocess(const graph::Graph& graph, double epsilon,
                         util::Rng& rng);

// Catalog without the (relatively costly) spectral pass: exact counts only,
// with the caller supplying walk parameters. Useful for tests and benches
// that pin j explicitly like the paper does.
SystemCatalog MakeCatalog(const graph::Graph& graph, size_t jump,
                          size_t burn_in);

// Refreshed catalog over the *live* overlay: counts only peers currently in
// the network and edges whose endpoints are both live. Models the paper's
// periodic re-estimation of the slow-changing parameters — under sustained
// churn the degree-weight normalizer 2|E| must track the live edge set or
// Horvitz-Thompson estimates drift by the dead-edge fraction.
SystemCatalog MakeLiveCatalog(const net::SimulatedNetwork& network,
                              size_t jump, size_t burn_in);

}  // namespace p2paqp::core

#endif  // P2PAQP_CORE_CATALOG_H_

#include "core/cross_validation.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace p2paqp::core {

CrossValidationResult CrossValidate(
    const std::vector<WeightedObservation>& observations, double total_weight,
    size_t repeats, util::Rng& rng) {
  P2PAQP_CHECK_GE(observations.size(), 2u);
  P2PAQP_CHECK_GE(repeats, 1u);
  CrossValidationResult result;
  result.estimate = HorvitzThompson(observations, total_weight);

  size_t m = observations.size();
  size_t half = m / 2;
  std::vector<size_t> order(m);
  for (size_t i = 0; i < m; ++i) order[i] = i;

  double squared_sum = 0.0;
  std::vector<WeightedObservation> group1(half);
  std::vector<WeightedObservation> group2;
  for (size_t r = 0; r < repeats; ++r) {
    rng.Shuffle(order);
    group2.clear();
    for (size_t i = 0; i < half; ++i) group1[i] = observations[order[i]];
    // Both groups get exactly `half` observations; with odd m one
    // observation sits out this round (a different one each shuffle).
    for (size_t i = half; i < 2 * half; ++i) {
      group2.push_back(observations[order[i]]);
    }
    double y1 = HorvitzThompson(group1, total_weight);
    double y2 = HorvitzThompson(group2, total_weight);
    squared_sum += (y1 - y2) * (y1 - y2);
  }
  result.cv_error = std::sqrt(squared_sum / static_cast<double>(repeats));
  result.cv_error_relative =
      result.estimate == 0.0 ? 0.0
                             : result.cv_error / std::fabs(result.estimate);
  return result;
}

size_t PhaseTwoSampleSize(size_t phase1_peers, double cv_error_relative,
                          double required_error, size_t min_peers,
                          size_t max_peers) {
  P2PAQP_CHECK_GT(required_error, 0.0);
  P2PAQP_CHECK_GE(max_peers, min_peers);
  double ratio = cv_error_relative / required_error;
  double sized = static_cast<double>(phase1_peers) / 2.0 * ratio * ratio;
  if (sized >= static_cast<double>(max_peers)) return max_peers;
  auto rounded = static_cast<size_t>(std::ceil(sized));
  return std::clamp(rounded, min_peers, max_peers);
}

}  // namespace p2paqp::core

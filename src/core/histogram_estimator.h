// Approximate value-distribution histograms (the paper's "statistics
// computations such as ... histograms", Sec. 3.2).
//
// Like median/distinct, histograms cannot be composed from per-peer scalars;
// visited peers ship their raw sub-sampled tuples (bandwidth charged) and
// the sink builds a Horvitz-Thompson weighted histogram: each shipped tuple
// from peer s contributes weight
//     (local_tuples(s) / processed(s)) / prob(s)
// — the sub-sample scale-up times the inverse selection probability — so
// every bucket count is an unbiased estimate of that bucket's global count.
//
// Phase sizing reuses the cross-validation idea with the normalized L1
// distance between half-sample histograms as the error functional.
#ifndef P2PAQP_CORE_HISTOGRAM_ESTIMATOR_H_
#define P2PAQP_CORE_HISTOGRAM_ESTIMATOR_H_

#include "core/two_phase.h"
#include "util/histogram.h"

namespace p2paqp::core {

struct HistogramAnswer {
  util::Histogram histogram;
  // Phase-I half-vs-half normalized L1 cross-validation distance in [0, 2].
  double cv_l1 = 0.0;
  size_t phase1_peers = 0;
  size_t phase2_peers = 0;
  uint64_t sample_tuples = 0;
  net::CostSnapshot cost;
};

struct HistogramRequest {
  // Bucketization of the value domain.
  data::Value lo = 1;
  data::Value hi = 100;
  size_t num_buckets = 10;
  // Required normalized-L1 accuracy (plays the role of Delta_req).
  double required_l1 = 0.1;
};

// Two-phase approximate histogram through `engine`'s sampler/network.
util::Result<HistogramAnswer> EstimateHistogramTwoPhase(
    TwoPhaseEngine& engine, const HistogramRequest& request,
    graph::NodeId sink, util::Rng& rng);

}  // namespace p2paqp::core

#endif  // P2PAQP_CORE_HISTOGRAM_ESTIMATOR_H_

#include "core/median.h"

#include <algorithm>
#include <cmath>

#include "util/statistics.h"

namespace p2paqp::core {

double WeightedQuantileOfMedians(const std::vector<double>& values,
                                 const std::vector<double>& weights,
                                 double phi) {
  return util::WeightedQuantile(values, weights, phi);
}

double WeightedRankFraction(const std::vector<double>& values,
                            const std::vector<double>& weights, double x) {
  P2PAQP_CHECK_EQ(values.size(), weights.size());
  double below = 0.0;
  double total = 0.0;
  for (size_t i = 0; i < values.size(); ++i) {
    P2PAQP_CHECK_GE(weights[i], 0.0);
    total += weights[i];
    if (values[i] < x) below += weights[i];
  }
  P2PAQP_CHECK_GT(total, 0.0);
  return below / total;
}

namespace {

// Per-peer median + selection weight, filtered to peers that processed at
// least one tuple (an empty peer has no local median).
struct MedianSample {
  std::vector<double> medians;
  // Rank mass represented per peer: local_tuples / prob(s), up to a
  // constant factor. The paper's Sec. 5.6 uses 1/prob(s) — identical when
  // all peers hold the same number of tuples (its experimental setup) —
  // but the tuple-count factor keeps the weighted median correct for
  // "horizontal partitions of varying sizes" (Sec. 1).
  std::vector<double> weights;
};

MedianSample ExtractMedians(const std::vector<PeerObservation>& observations) {
  MedianSample sample;
  for (const PeerObservation& obs : observations) {
    if (obs.aggregate.processed_tuples == 0 || obs.stationary_weight <= 0.0) {
      continue;
    }
    sample.medians.push_back(obs.aggregate.local_median);
    sample.weights.push_back(
        static_cast<double>(obs.aggregate.local_tuples) /
        obs.stationary_weight);
  }
  return sample;
}

}  // namespace

util::Result<ApproximateAnswer> EstimateQuantileTwoPhase(
    TwoPhaseEngine& engine, const query::AggregateQuery& query,
    graph::NodeId sink, util::Rng& rng) {
  P2PAQP_CHECK(query.op == query::AggregateOp::kMedian ||
               query.op == query::AggregateOp::kQuantile);
  double phi =
      query.op == query::AggregateOp::kQuantile ? query.quantile_phi : 0.5;
  if (phi <= 0.0 || phi >= 1.0) {
    return util::Status::InvalidArgument("quantile phi must be in (0,1)");
  }
  net::SimulatedNetwork* network = engine.network();
  net::CostSnapshot before = network->cost_snapshot();

  // ---- Phase I (steps 1-2): m peers ship their local medians. ----
  auto phase1 = engine.CollectObservations(query, sink,
                                           engine.params().phase1_peers, rng);
  if (!phase1.ok()) return phase1.status();

  // ---- Steps 3-5: cross-validate the weighted rank. ----
  // Randomly split the medians into two groups; medg1 is group 1's weighted
  // phi-quantile; c is how far medg1's weighted rank inside group 2 deviates
  // from phi — a rank-space cross-validation error in [0, 1].
  MedianSample all = ExtractMedians(*phase1);
  if (all.medians.size() < 4) {
    return util::Status::Unavailable(
        "phase I produced too few non-empty peers for median estimation");
  }
  size_t m = all.medians.size();
  size_t half = m / 2;
  std::vector<size_t> order(m);
  for (size_t i = 0; i < m; ++i) order[i] = i;
  double squared_sum = 0.0;
  for (size_t r = 0; r < engine.params().cv_repeats; ++r) {
    rng.Shuffle(order);
    std::vector<double> v1, w1, v2, w2;
    for (size_t i = 0; i < half; ++i) {
      v1.push_back(all.medians[order[i]]);
      w1.push_back(all.weights[order[i]]);
    }
    for (size_t i = half; i < 2 * half; ++i) {
      v2.push_back(all.medians[order[i]]);
      w2.push_back(all.weights[order[i]]);
    }
    double medg1 = util::WeightedQuantile(v1, w1, phi);
    double medg2 = util::WeightedQuantile(v2, w2, phi);
    // Rank discrepancy between group-2's own quantile and group-1's
    // quantile, both measured in group 2's weighted rank space.
    double c = WeightedRankFraction(v2, w2, medg1) -
               WeightedRankFraction(v2, w2, medg2);
    squared_sum += c * c;
  }
  double cv_rank_error =
      std::sqrt(squared_sum / static_cast<double>(engine.params().cv_repeats));

  // ---- Step 6: size phase II. Rank error and required_error share the
  // [0,1] scale, so the COUNT sizing rule carries over. ----
  size_t phase2_peers = PhaseTwoSampleSize(
      m, cv_rank_error, query.required_error, engine.params().min_phase2_peers,
      engine.params().max_phase2_peers == 0 ? network->num_peers()
                                            : engine.params().max_phase2_peers);

  // ---- Step 7: weighted median of the additional peers' medians. ----
  auto phase2 = engine.CollectObservations(query, sink, phase2_peers, rng);
  if (!phase2.ok()) return phase2.status();
  MedianSample final_sample = ExtractMedians(*phase2);
  if (engine.params().include_phase1_observations ||
      final_sample.medians.empty()) {
    final_sample.medians.insert(final_sample.medians.end(),
                                all.medians.begin(), all.medians.end());
    final_sample.weights.insert(final_sample.weights.end(),
                                all.weights.begin(), all.weights.end());
  }

  ApproximateAnswer answer;
  answer.estimate =
      util::WeightedQuantile(final_sample.medians, final_sample.weights, phi);
  answer.cv_error_relative = cv_rank_error;
  answer.phase1_peers = phase1->size();
  answer.phase2_peers = phase2->size();
  answer.cost = net::CostDelta(network->cost_snapshot(), before);
  answer.sample_tuples = answer.cost.tuples_sampled;
  return answer;
}

}  // namespace p2paqp::core

#include "core/multi_query.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "core/cross_validation.h"
#include "core/estimator.h"
#include "core/robust_estimator.h"
#include "query/local_executor.h"
#include "util/bug_injection.h"

namespace p2paqp::core {

namespace {

constexpr double kZ95 = 1.959963984540054;

std::vector<WeightedObservation> ToWeighted(
    const std::vector<PeerObservation>& observations, query::AggregateOp op) {
  std::vector<WeightedObservation> weighted;
  weighted.reserve(observations.size());
  for (const PeerObservation& obs : observations) {
    weighted.push_back({obs.aggregate.ValueFor(op), obs.stationary_weight});
  }
  return weighted;
}

// Horvitz-Thompson estimate of the total aggregate over the database (tuple
// count for COUNT, all-tuples sum for SUM); error-normalization only.
double EstimateTotal(const std::vector<PeerObservation>& observations,
                     query::AggregateOp op, double total_weight) {
  std::vector<WeightedObservation> totals;
  totals.reserve(observations.size());
  for (const PeerObservation& obs : observations) {
    double value = op == query::AggregateOp::kSum
                       ? obs.aggregate.total_sum_value
                       : static_cast<double>(obs.aggregate.local_tuples);
    totals.push_back({value, obs.stationary_weight});
  }
  return HorvitzThompson(totals, total_weight);
}

size_t Quorum(double fraction, size_t requested) {
  return static_cast<size_t>(
      std::ceil(fraction * static_cast<double>(requested)));
}

}  // namespace

struct QueryScheduler::QueryState {
  const query::AggregateQuery* query = nullptr;
  std::vector<PeerObservation> phase1;
  std::vector<PeerObservation> phase2;
  TwoPhaseEngine::CollectionStats s1;
  TwoPhaseEngine::CollectionStats s2;
  size_t phase2_needed = 0;
  double cv_normalized = 0.0;
  double estimated_total = 0.0;
  bool failed = false;
  util::Status failure = util::Status::Ok();

  void Fail(util::Status why) {
    failed = true;
    failure = std::move(why);
  }
};

QueryScheduler::QueryScheduler(net::SimulatedNetwork* network,
                               const SystemCatalog& catalog,
                               const SchedulerParams& params,
                               FreshnessCache* cache)
    : network_(network),
      catalog_(catalog),
      params_(params),
      cache_(cache),
      total_weight_(catalog.total_degree_weight()) {
  P2PAQP_CHECK(network_ != nullptr);
  P2PAQP_CHECK(cache_ != nullptr);
  P2PAQP_CHECK_GT(total_weight_, 0.0);
  P2PAQP_CHECK_GE(params_.engine.phase1_peers, 2u);
}

void QueryScheduler::BeginBatchFrame(SampleFrameStats* stats) {
  if (!frame_.selections.empty() &&
      cache_->epoch() - frame_.epoch > params_.frame_ttl_epochs) {
    // Expired: a frame this old may misrepresent the live overlay. Rebuild
    // whole rather than mixing selection vintages.
    frame_.selections.clear();
    ++stats->rebuilds;
    ++lifetime_frame_.rebuilds;
    if (net::HistoryRecorder* history = network_->history()) {
      history->Record(net::HistoryEventKind::kExpire,
                      net::MessageType::kSampleRequest, graph::kInvalidNode,
                      graph::kInvalidNode);
    }
  }
  batch_carry_ = frame_.selections.size();
}

util::Status QueryScheduler::EnsureFrame(size_t needed, graph::NodeId sink,
                                         uint32_t batch, util::Rng& rng,
                                         SampleFrameStats* stats) {
  if (frame_.selections.empty()) frame_.epoch = cache_->epoch();
  size_t have = frame_.selections.size();
  // Hits are carried-over selections only; `stats` accumulates across the
  // batch's phases, so count the carry prefix [0, min(carry, needed)) once.
  size_t usable_carry = std::min(batch_carry_, needed);
  if (usable_carry > stats->frame_hits) {
    size_t new_hits = usable_carry - stats->frame_hits;
    stats->frame_hits += new_hits;
    lifetime_frame_.frame_hits += new_hits;
    if (util::BugArmed(util::InjectedBug::kDoubleCountFrameHits)) {
      // Injected bug: the carry prefix is credited again on top of the
      // first count, so hits can exceed the selections actually carried.
      stats->frame_hits += new_hits;
      lifetime_frame_.frame_hits += new_hits;
    }
  }
  stats->frame_epoch = frame_.epoch;
  lifetime_frame_.frame_epoch = frame_.epoch;
  if (have >= needed) return util::Status::Ok();

  // Incremental top-up: walk only the missing selections. The walk restarts
  // at the sink with a fresh burn-in, so appended selections are stationary
  // like the originals.
  sampling::WalkParams walk_params = params_.walk;
  walk_params.batch = params_.batch_walkers ? batch : 1;
  sampling::RandomWalk walk(network_, walk_params);
  auto outcome = walk.CollectResilient(sink, needed - have, rng);
  if (!outcome.ok()) return outcome.status();
  for (const sampling::PeerVisit& visit : outcome->visits) {
    frame_.selections.push_back(visit);
  }
  size_t appended = outcome->visits.size();
  stats->frame_misses += appended;
  lifetime_frame_.frame_misses += appended;
  // Truncation (budget exhaustion) leaves a short frame; the per-query
  // quorum checks downstream decide whether that is fatal.
  return util::Status::Ok();
}

void QueryScheduler::CollectRange(std::vector<QueryState>& states,
                                  size_t first, size_t last,
                                  graph::NodeId sink, bool phase2,
                                  util::Rng& rng) {
  net::AdversaryInjector* adversary = network_->adversary();
  const size_t retransmits = params_.engine.reply_retransmits;
  std::vector<size_t> active;
  std::vector<PeerObservation> pending;
  for (size_t idx = first; idx < last && idx < frame_.selections.size();
       ++idx) {
    const sampling::PeerVisit& visit = frame_.selections[idx];
    size_t offset = idx - first;
    active.clear();
    for (size_t q = 0; q < states.size(); ++q) {
      if (states[q].failed) continue;
      if (phase2 && offset >= states[q].phase2_needed) continue;
      active.push_back(q);
    }
    if (active.empty()) break;  // Offsets only grow; nobody needs the rest.
    // A frame peer may have departed since selection (or between batches):
    // every query multiplexed on this visit loses the observation.
    if (!network_->IsAlive(visit.peer)) continue;
    const auto batch_width = static_cast<uint32_t>(active.size());
    // Per-query local execution, answered from the shared FreshnessCache
    // when the (peer, query-signature) pair was computed recently.
    pending.clear();
    for (size_t q : active) {
      QueryState& state = states[q];
      PeerObservation obs;
      obs.peer = visit.peer;
      obs.degree = visit.degree;
      // Weight under which the peer entered the frame; reused selections
      // keep their selection-time degree so prob(p) matches the draw.
      obs.stationary_weight = static_cast<double>(visit.degree);
      obs.selection_seq = idx;
      bool from_cache =
          cache_->Lookup(visit.peer, *state.query, &obs.aggregate);
      if (from_cache) {
        // The visit happened but the peer answers from cache: no local scan.
        network_->cost().RecordPeerVisit();
      } else {
        obs.aggregate = query::ExecuteLocal(
            network_->peer(visit.peer).database(), *state.query,
            query::SubSamplePolicy{.t = params_.engine.tuples_per_peer,
                                   .mode = params_.engine.subsample_mode,
                                   .block_size = params_.engine.block_size},
            rng);
        network_->RecordLocalExecution(visit.peer,
                                       obs.aggregate.processed_tuples,
                                       obs.aggregate.processed_tuples);
        cache_->Store(visit.peer, *state.query, obs.aggregate);
      }
      // Degree/value lies follow the batched reply exactly as they follow
      // the per-query one; replayed duplicates are dropped by the sink's
      // (query, peer, seq) tag dedup and only waste adversary bandwidth, so
      // they are not modeled on this path.
      TamperObservation(adversary, &obs);
      pending.push_back(obs);
    }
    // One batched reply carries every multiplexed query's (y(p), deg(p))
    // body behind a single shared header. Lost in transit = lost for all of
    // them; retransmitted after a sink-side timeout like the engine's.
    bool delivered = false;
    for (size_t attempt = 0; attempt <= retransmits; ++attempt) {
      if (attempt > 0) {
        for (size_t q : active) {
          TwoPhaseEngine::CollectionStats& s =
              phase2 ? states[q].s2 : states[q].s1;
          ++s.reply_retransmits;
        }
        // One timeout/retransmit pair per wire message, not per
        // multiplexed query: the batched reply is lost (and re-sent)
        // whole.
        if (net::HistoryRecorder* history = network_->history()) {
          history->Record(net::HistoryEventKind::kTimeout,
                          net::MessageType::kAggregateReply, visit.peer, sink,
                          batch_width);
          history->Record(net::HistoryEventKind::kRetransmit,
                          net::MessageType::kAggregateReply, visit.peer, sink,
                          batch_width);
        }
      }
      util::Status sent =
          network_->SendDirect(net::MessageType::kAggregateReply, visit.peer,
                               sink, /*extra_payload_bytes=*/0, batch_width);
      if (sent.ok()) {
        delivered = true;
        break;
      }
      if (!network_->IsAlive(visit.peer) || !network_->IsAlive(sink)) break;
    }
    if (!delivered) continue;
    for (size_t i = 0; i < active.size(); ++i) {
      QueryState& state = states[active[i]];
      (phase2 ? state.phase2 : state.phase1).push_back(pending[i]);
    }
  }
}

BatchResult QueryScheduler::ExecuteBatch(
    const std::vector<query::AggregateQuery>& queries, graph::NodeId sink,
    util::Rng& rng) {
  BatchResult result;
  result.answers.reserve(queries.size());
  net::CostSnapshot before = network_->cost_snapshot();
  if (!params_.reuse_frame) InvalidateFrame();
  BeginBatchFrame(&result.frame);

  std::vector<QueryState> states(queries.size());
  for (size_t q = 0; q < queries.size(); ++q) {
    states[q].query = &queries[q];
    if (queries[q].op != query::AggregateOp::kCount &&
        queries[q].op != query::AggregateOp::kSum) {
      states[q].Fail(util::Status::InvalidArgument(
          "scheduler batches support COUNT and SUM only"));
    }
  }
  bool sink_ok =
      sink < network_->num_peers() && network_->IsAlive(sink);
  if (!sink_ok) {
    for (QueryState& state : states) {
      if (!state.failed) {
        state.Fail(util::Status::FailedPrecondition("sink peer is not live"));
      }
    }
  }

  const size_t m = params_.engine.phase1_peers;
  const double quorum_fraction = params_.engine.min_observation_quorum;
  size_t live = 0;
  for (const QueryState& state : states) live += state.failed ? 0 : 1;

  if (live > 0) {
    // ---- Phase I over the shared frame prefix [0, m). ----
    util::Status framed = EnsureFrame(m, sink, static_cast<uint32_t>(live),
                                      rng, &result.frame);
    if (!framed.ok()) {
      for (QueryState& state : states) {
        if (!state.failed) state.Fail(framed);
      }
    } else {
      for (QueryState& state : states) {
        if (!state.failed) state.s1.requested = m;
      }
      CollectRange(states, 0, m, sink, /*phase2=*/false, rng);
      for (QueryState& state : states) {
        if (state.failed) continue;
        state.s1.delivered = state.phase1.size();
        state.s1.lost = state.s1.requested - state.s1.delivered;
        if (state.s1.delivered < Quorum(quorum_fraction, state.s1.requested) &&
            !util::BugArmed(util::InjectedBug::kSkipQuorumCheck)) {
          state.Fail(util::Status::Unavailable(
              "observation quorum not met in phase I"));
        } else if (state.phase1.size() < 2) {
          state.Fail(util::Status::Unavailable(
              "phase I delivered too few observations to cross-validate"));
        }
      }
    }
  }

  // ---- Per-query cross-validation sizing (paper Sec. 3.4). ----
  const size_t max_phase2 = params_.engine.max_phase2_peers == 0
                                ? network_->num_peers()
                                : params_.engine.max_phase2_peers;
  size_t widest_plan = 0;
  for (QueryState& state : states) {
    if (state.failed) continue;
    CrossValidationResult cv =
        CrossValidate(ToWeighted(state.phase1, state.query->op), total_weight_,
                      params_.engine.cv_repeats, rng);
    state.estimated_total =
        EstimateTotal(state.phase1, state.query->op, total_weight_);
    if (state.estimated_total <= 0.0 ||
        params_.engine.normalization == ErrorNormalization::kQueryAnswer) {
      state.estimated_total = std::fabs(cv.estimate);
    }
    state.cv_normalized = state.estimated_total == 0.0
                              ? 0.0
                              : cv.cv_error / state.estimated_total;
    state.phase2_needed = PhaseTwoSampleSize(
        state.phase1.size(), state.cv_normalized,
        state.query->required_error, params_.engine.min_phase2_peers,
        max_phase2);
    widest_plan = std::max(widest_plan, state.phase2_needed);
  }

  if (widest_plan > 0) {
    // ---- Phase II over frame slots [m, m + widest_plan): one shared
    // top-up sized by the largest plan; each query consumes its prefix. ----
    size_t live2 = 0;
    for (const QueryState& state : states) live2 += state.failed ? 0 : 1;
    util::Status framed =
        EnsureFrame(m + widest_plan, sink, static_cast<uint32_t>(live2), rng,
                    &result.frame);
    if (!framed.ok()) {
      for (QueryState& state : states) {
        if (!state.failed) state.Fail(framed);
      }
    } else {
      for (QueryState& state : states) {
        if (!state.failed) state.s2.requested = state.phase2_needed;
      }
      CollectRange(states, m, m + widest_plan, sink, /*phase2=*/true, rng);
      for (QueryState& state : states) {
        if (state.failed) continue;
        state.s2.delivered = state.phase2.size();
        state.s2.lost = state.s2.requested - state.s2.delivered;
        if (state.s2.delivered < Quorum(quorum_fraction, state.s2.requested) &&
            !util::BugArmed(util::InjectedBug::kSkipQuorumCheck)) {
          state.Fail(util::Status::Unavailable(
              "observation quorum not met in phase II"));
        }
      }
    }
  }
  // ---- Per-query estimation epilogue (mirrors ExecuteCentral). ----
  const RobustnessPolicy& policy = params_.engine.robustness;
  for (QueryState& state : states) {
    if (state.failed) {
      result.answers.emplace_back(state.failure);
      continue;
    }
    std::vector<PeerObservation> final_set;
    if (params_.engine.include_phase1_observations) {
      final_set = state.phase1;
      final_set.insert(final_set.end(), state.phase2.begin(),
                       state.phase2.end());
    } else {
      final_set = state.phase2;
    }
    size_t suspected =
        AuditObservationDegrees(network_, policy, sink, &final_set, rng);
    if (final_set.empty()) {
      result.answers.emplace_back(util::Status::Unavailable(
          "degree audit rejected every observation"));
      continue;
    }
    ApproximateAnswer answer;
    answer.suspected_peers = suspected;
    auto weighted = ToWeighted(final_set, state.query->op);
    if (policy.enabled()) {
      RobustEstimate robust =
          RobustHorvitzThompson(weighted, total_weight_, policy);
      answer.estimate = robust.estimate;
      answer.variance = robust.variance;
      answer.trimmed_mass = robust.trimmed_mass;
    } else {
      answer.estimate = HorvitzThompson(weighted, total_weight_);
      answer.variance = HorvitzThompsonVariance(weighted, total_weight_);
    }
    answer.observations_lost = state.s1.lost + state.s2.lost;
    answer.walk_restarts = state.s1.walk_restarts + state.s2.walk_restarts;
    answer.degraded = answer.observations_lost > 0 || suspected > 0 ||
                      answer.trimmed_mass > 0.0;
    double inflation = 1.0;
    if (answer.observations_lost > 0) {
      size_t requested = state.s1.requested + state.s2.requested;
      size_t arrived = state.s1.delivered + state.s2.delivered;
      inflation =
          std::sqrt(static_cast<double>(requested) /
                    static_cast<double>(std::max<size_t>(arrived, 1)));
    }
    double discarded = std::min(answer.trimmed_mass, 0.9);
    if (discarded > 0.0) inflation *= std::sqrt(1.0 / (1.0 - discarded));
    answer.ci_half_width_95 = kZ95 * std::sqrt(answer.variance) * inflation;
    answer.estimated_total = state.estimated_total;
    answer.cv_error_relative = state.cv_normalized;
    answer.phase1_peers = state.phase1.size();
    answer.phase2_peers = state.phase2.size();
    double denom = state.estimated_total > 0.0 ? state.estimated_total
                                               : std::fabs(answer.estimate);
    answer.achieved_error =
        denom > 0.0 ? answer.ci_half_width_95 / denom : 0.0;
    // Per-query cost stays zero: the batched walk/reply work is shared and
    // indivisible. BatchResult::cost carries the whole batch.
    result.answers.emplace_back(std::move(answer));
  }

  result.cost = net::CostDelta(network_->cost_snapshot(), before);
  return result;
}

}  // namespace p2paqp::core

// Median / quantile estimation (Sec. 5.6).
//
// Unlike COUNT/SUM, the aggregation cannot be pushed to peers and composed
// linearly. The paper's algorithm instead works with *weighted medians of
// local medians*: phase I collects per-peer medians weighted by 1/prob(s),
// cross-validates the weighted rank of one half's weighted median inside the
// other half, sizes phase II from that rank discrepancy, and returns the
// weighted median over the phase-II peers.
#ifndef P2PAQP_CORE_MEDIAN_H_
#define P2PAQP_CORE_MEDIAN_H_

#include "core/two_phase.h"

namespace p2paqp::core {

// Runs the two-phase quantile plan through `engine`'s sampler/network.
// query.op must be kMedian or kQuantile; for kQuantile the target rank is
// query.quantile_phi. The answer's estimate is the value; its
// cv_error_relative is the phase-I rank discrepancy (already a fraction of
// N, the natural normalization for rank error).
util::Result<ApproximateAnswer> EstimateQuantileTwoPhase(
    TwoPhaseEngine& engine, const query::AggregateQuery& query,
    graph::NodeId sink, util::Rng& rng);

// Weighted phi-quantile of per-peer local medians; exposed for tests.
// `values[i]` with weight `weights[i]` (> 0).
double WeightedQuantileOfMedians(const std::vector<double>& values,
                                 const std::vector<double>& weights,
                                 double phi);

// Weighted rank fraction of `x` within (values, weights): the fraction of
// total weight carried by entries strictly below x. Exposed for tests.
double WeightedRankFraction(const std::vector<double>& values,
                            const std::vector<double>& weights, double x);

}  // namespace p2paqp::core

#endif  // P2PAQP_CORE_MEDIAN_H_

#include "core/baselines.h"

namespace p2paqp::core {

const char* BaselineKindToString(BaselineKind kind) {
  switch (kind) {
    case BaselineKind::kBfs:
      return "bfs";
    case BaselineKind::kDfs:
      return "dfs";
  }
  return "unknown";
}

std::unique_ptr<TwoPhaseEngine> MakeBaselineEngine(
    net::SimulatedNetwork* network, const SystemCatalog& catalog,
    const EngineParams& params, BaselineKind kind) {
  switch (kind) {
    case BaselineKind::kBfs:
      return std::make_unique<TwoPhaseEngine>(
          network, catalog, params,
          std::make_unique<sampling::BfsSampler>(network),
          static_cast<double>(catalog.num_peers));
    case BaselineKind::kDfs:
      return std::make_unique<TwoPhaseEngine>(
          network, catalog, params,
          std::make_unique<sampling::DfsSampler>(network),
          catalog.total_degree_weight());
  }
  return nullptr;
}

}  // namespace p2paqp::core

#include "core/two_phase.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <utility>

#include "core/distinct.h"
#include "core/median.h"
#include "util/bug_injection.h"
#include "util/statistics.h"

namespace p2paqp::core {

namespace {

constexpr double kZ95 = 1.959963984540054;

// Horvitz-Thompson estimate of SUM/COUNT (the AVG ratio) over a slice of
// observations.
double RatioEstimate(const std::vector<PeerObservation>& observations,
                     double total_weight) {
  std::vector<WeightedObservation> counts;
  std::vector<WeightedObservation> sums;
  counts.reserve(observations.size());
  sums.reserve(observations.size());
  for (const PeerObservation& obs : observations) {
    counts.push_back({obs.aggregate.count_value, obs.stationary_weight});
    sums.push_back({obs.aggregate.sum_value, obs.stationary_weight});
  }
  double count = HorvitzThompson(counts, total_weight);
  if (count == 0.0) return 0.0;
  return HorvitzThompson(sums, total_weight) / count;
}

// Cross-validation for the AVG ratio (the linear CrossValidate in
// cross_validation.h does not apply to a ratio of two estimators).
CrossValidationResult CrossValidateRatio(
    const std::vector<PeerObservation>& observations, double total_weight,
    size_t repeats, util::Rng& rng) {
  P2PAQP_CHECK_GE(observations.size(), 2u);
  CrossValidationResult result;
  result.estimate = RatioEstimate(observations, total_weight);
  size_t m = observations.size();
  size_t half = m / 2;
  std::vector<size_t> order(m);
  for (size_t i = 0; i < m; ++i) order[i] = i;
  double squared_sum = 0.0;
  for (size_t r = 0; r < repeats; ++r) {
    rng.Shuffle(order);
    std::vector<PeerObservation> g1;
    std::vector<PeerObservation> g2;
    g1.reserve(half);
    g2.reserve(half);
    for (size_t i = 0; i < half; ++i) g1.push_back(observations[order[i]]);
    for (size_t i = half; i < 2 * half; ++i) {
      g2.push_back(observations[order[i]]);
    }
    double y1 = RatioEstimate(g1, total_weight);
    double y2 = RatioEstimate(g2, total_weight);
    squared_sum += (y1 - y2) * (y1 - y2);
  }
  result.cv_error = std::sqrt(squared_sum / static_cast<double>(repeats));
  result.cv_error_relative =
      result.estimate == 0.0 ? 0.0
                             : result.cv_error / std::fabs(result.estimate);
  return result;
}

// Horvitz-Thompson estimate of the total aggregate over the database:
// total tuple count for COUNT/AVG, all-tuples sum for SUM. Used only for
// error normalization.
double EstimateTotal(const std::vector<PeerObservation>& observations,
                     query::AggregateOp op, double total_weight) {
  std::vector<WeightedObservation> totals;
  totals.reserve(observations.size());
  for (const PeerObservation& obs : observations) {
    double value = op == query::AggregateOp::kSum
                       ? obs.aggregate.total_sum_value
                       : static_cast<double>(obs.aggregate.local_tuples);
    totals.push_back({value, obs.stationary_weight});
  }
  return HorvitzThompson(totals, total_weight);
}

}  // namespace

size_t TamperObservation(net::AdversaryInjector* adversary,
                         PeerObservation* obs) {
  if (adversary == nullptr || !adversary->IsAdversarial(obs->peer)) return 0;
  uint32_t claimed = adversary->ClaimedDegree(obs->peer, obs->degree);
  if (claimed != obs->degree && obs->degree > 0) {
    // The stationary weight the sink divides by follows the lie: the sink
    // only knows what the reply claims.
    obs->stationary_weight *= static_cast<double>(claimed) /
                              static_cast<double>(obs->degree);
    obs->degree = claimed;
  }
  net::ReplyTampering tampering = adversary->OnReply(obs->peer);
  if (tampering.value_scale != 1.0) {
    obs->aggregate.count_value *= tampering.value_scale;
    obs->aggregate.sum_value *= tampering.value_scale;
    obs->aggregate.total_sum_value *= tampering.value_scale;
  }
  return tampering.replays;
}

size_t AuditObservationDegrees(net::SimulatedNetwork* network,
                               const RobustnessPolicy& policy,
                               graph::NodeId sink,
                               std::vector<PeerObservation>* observations,
                               util::Rng& rng) {
  if (policy.degree_audit_probes == 0 || observations->empty()) return 0;
  const net::AdversaryInjector* adversary = network->adversary();
  // Audit each distinct peer once, at its claimed degree.
  std::vector<std::pair<graph::NodeId, uint32_t>> audited;
  for (const PeerObservation& obs : *observations) {
    bool seen = false;
    for (const auto& entry : audited) {
      if (entry.first == obs.peer) {
        seen = true;
        break;
      }
    }
    if (!seen) audited.emplace_back(obs.peer, obs.degree);
  }
  std::vector<graph::NodeId> suspected;
  // One decode per audited peer, reused across its probes: NeighborRange's
  // operator[] re-decodes the varint list from the front on every call,
  // which made this nested probe loop quadratic in degree.
  std::vector<graph::NodeId> real;
  for (const auto& [peer, claimed] : audited) {
    if (claimed == 0) continue;
    network->graph().CopyNeighbors(peer, &real);
    size_t confirms = 0;
    size_t denials = 0;
    for (size_t probe = 0; probe < policy.degree_audit_probes; ++probe) {
      // One uniformly-chosen slot of the claimed adjacency list. Slots
      // beyond the real degree are fabricated: the claimed address resolves
      // to an arbitrary peer that is not actually adjacent.
      size_t slot = rng.UniformIndex(claimed);
      bool genuine = slot < real.size();
      graph::NodeId target =
          genuine ? real[slot]
                  : static_cast<graph::NodeId>(
                        rng.UniformIndex(network->num_peers()));
      if (target == peer || !network->IsAlive(target)) continue;
      // Probe + attestation each cross the Internet once and can be lost to
      // the installed fault plan; a lost round is inconclusive.
      if (!network->SendDirect(net::MessageType::kAuditProbe, sink, target)
               .ok()) {
        continue;
      }
      if (!network->SendDirect(net::MessageType::kAuditReply, target, sink)
               .ok()) {
        continue;
      }
      // A real neighbor attests truthfully (the adjacency exists); a
      // non-neighbor denies unless it colludes with the audited peer.
      bool colludes = adversary != nullptr && adversary->IsAdversarial(peer) &&
                      adversary->IsAdversarial(target);
      if (genuine || network->graph().HasEdge(peer, target) || colludes) {
        ++confirms;
      } else {
        ++denials;
      }
    }
    size_t delivered = confirms + denials;
    if (delivered > 0 &&
        static_cast<double>(denials) >
            policy.degree_audit_denial_threshold *
                static_cast<double>(delivered)) {
      suspected.push_back(peer);
    }
  }
  if (suspected.empty()) return 0;
  auto is_suspected = [&suspected](graph::NodeId peer) {
    return std::find(suspected.begin(), suspected.end(), peer) !=
           suspected.end();
  };
  observations->erase(
      std::remove_if(observations->begin(), observations->end(),
                     [&is_suspected](const PeerObservation& obs) {
                       return is_suspected(obs.peer);
                     }),
      observations->end());
  return suspected.size();
}

std::string ApproximateAnswer::ToString() const {
  char buf[320];
  std::snprintf(buf, sizeof(buf),
                "estimate=%.2f (+/-%.2f @95%%) cv_rel=%.4f m=%zu m'=%zu "
                "sample_tuples=%llu | %s",
                estimate, ci_half_width_95, cv_error_relative, phase1_peers,
                phase2_peers,
                static_cast<unsigned long long>(sample_tuples),
                cost.ToString().c_str());
  std::string out = buf;
  if (degraded) {
    char extra[128];
    std::snprintf(extra, sizeof(extra),
                  " | DEGRADED lost=%zu restarts=%zu achieved_err=%.4f",
                  observations_lost, walk_restarts, achieved_error);
    out += extra;
  }
  if (suspected_peers > 0 || trimmed_mass > 0.0 || duplicate_replies > 0) {
    char extra[128];
    std::snprintf(extra, sizeof(extra),
                  " | AUDIT suspected=%zu trimmed_mass=%.3f dupes=%zu",
                  suspected_peers, trimmed_mass, duplicate_replies);
    out += extra;
  }
  if (deadline_hit || hedges_sent > 0 || stragglers_skipped > 0) {
    char extra[128];
    std::snprintf(extra, sizeof(extra),
                  " | STRAGGLER deadline_hit=%d hedges=%zu skips=%zu",
                  deadline_hit ? 1 : 0, hedges_sent, stragglers_skipped);
    out += extra;
  }
  return out;
}

TwoPhaseEngine::TwoPhaseEngine(net::SimulatedNetwork* network,
                               const SystemCatalog& catalog,
                               const EngineParams& params)
    : network_(network),
      catalog_(catalog),
      params_(params),
      sampler_(std::make_unique<sampling::RandomWalkSampler>(
          network,
          sampling::WalkParams{.jump = std::max<size_t>(1,
                                                        catalog.suggested_jump),
                               .burn_in = catalog.suggested_burn_in,
                               .variant = sampling::WalkVariant::kSimple,
                               .max_hops = 0,
                               .straggler = &params_.straggler,
                               .health = &health_})),
      total_weight_(catalog.total_degree_weight()) {
  P2PAQP_CHECK(network_ != nullptr);
  P2PAQP_CHECK_GE(params_.phase1_peers, 2u);
}

TwoPhaseEngine::TwoPhaseEngine(net::SimulatedNetwork* network,
                               const SystemCatalog& catalog,
                               const EngineParams& params,
                               std::unique_ptr<sampling::PeerSampler> sampler,
                               double total_weight)
    : network_(network),
      catalog_(catalog),
      params_(params),
      sampler_(std::move(sampler)),
      total_weight_(total_weight) {
  P2PAQP_CHECK(network_ != nullptr);
  P2PAQP_CHECK(sampler_ != nullptr);
  P2PAQP_CHECK_GT(total_weight_, 0.0);
  P2PAQP_CHECK_GE(params_.phase1_peers, 2u);
}

size_t TwoPhaseEngine::MaxPhase2Peers() const {
  return params_.max_phase2_peers == 0 ? network_->num_peers()
                                       : params_.max_phase2_peers;
}

util::Result<std::vector<PeerObservation>>
TwoPhaseEngine::CollectObservations(const query::AggregateQuery& query,
                                    graph::NodeId sink, size_t count,
                                    util::Rng& rng, CollectionStats* stats,
                                    size_t* retry_budget_left) {
  const net::StragglerPolicy& sp = params_.straggler;
  size_t local_budget = sp.retry_budget == 0 ? SIZE_MAX : sp.retry_budget;
  size_t* budget =
      retry_budget_left != nullptr ? retry_budget_left : &local_budget;
  auto consume_retry = [budget]() {
    if (*budget == 0) return false;
    if (*budget != SIZE_MAX) --*budget;
    return true;
  };
  auto sampled = sampler_->SamplePeersResilient(sink, count, rng);
  if (!sampled.ok()) return sampled.status();
  std::vector<PeerObservation> observations;
  observations.reserve(sampled->visits.size());
  size_t retransmits = 0;
  size_t duplicates_dropped = 0;
  size_t hedges = 0;
  net::AdversaryInjector* adversary = network_->adversary();
  net::HistoryRecorder* history = network_->history();
  const uint64_t dedup_round = history != nullptr ? history->NextRound() : 0;
  size_t selection_seq = 0;
  for (const sampling::PeerVisit& visit : sampled->visits) {
    const size_t seq = selection_seq++;
    // The selected peer may have departed between selection and local
    // execution (mid-query churn): its observation is simply lost.
    if (!network_->IsAlive(visit.peer)) continue;
    PeerObservation obs;
    obs.peer = visit.peer;
    obs.degree = visit.degree;
    obs.stationary_weight = sampler_->StationaryWeight(visit.peer);
    obs.selection_seq = seq;
    bool from_cache =
        cache_ != nullptr && cache_->Lookup(visit.peer, query, &obs.aggregate);
    if (from_cache) {
      // The visit happened (walker hop costs are already charged) but the
      // peer answers from its cache: no local scan.
      network_->cost().RecordPeerVisit();
    } else {
      obs.aggregate = query::ExecuteLocal(
          network_->peer(visit.peer).database(), query,
          query::SubSamplePolicy{.t = params_.tuples_per_peer,
                                 .mode = params_.subsample_mode,
                                 .block_size = params_.block_size},
          rng);
      network_->RecordLocalExecution(visit.peer, obs.aggregate.processed_tuples,
                                     obs.aggregate.processed_tuples);
      if (cache_ != nullptr) cache_->Store(visit.peer, query, obs.aggregate);
    }
    // An adversarial peer lies in the reply it is about to send: misreported
    // degree (and with it the stationary weight the sink divides by),
    // corrupted aggregates, and possibly replayed duplicate copies.
    size_t replays = TamperObservation(adversary, &obs);
    // (y(p), deg(p)) straight back to the sink over direct IP (Sec. 3.2).
    // A reply lost in transit is retransmitted after a sink-side timeout; a
    // crashed endpoint cannot retry.
    const uint64_t tag = net::DedupTag(dedup_round, visit.peer, seq);
    bool delivered = false;
    for (size_t attempt = 0; attempt <= params_.reply_retransmits; ++attempt) {
      if (attempt > 0) {
        if (!consume_retry()) break;
        ++retransmits;
        // The retry leaves at its actual schedule time: the sink-side wait
        // (fixed timer or jittered exponential backoff) lands in the ledger
        // before the re-send is charged, so the latency a backoff plan
        // reports is the latency the query actually spent waiting.
        double wait = net::RetryBackoffMs(sp, attempt, rng);
        if (wait > 0.0) network_->cost().RecordLatency(wait);
        // The sink's reply timer fires before it asks for the re-send.
        if (history != nullptr) {
          history->Record(net::HistoryEventKind::kTimeout,
                          net::MessageType::kAggregateReply, visit.peer, sink);
          history->Record(net::HistoryEventKind::kRetransmit,
                          net::MessageType::kAggregateReply, visit.peer, sink);
        }
      }
      util::Status sent = network_->SendDirect(
          net::MessageType::kAggregateReply, visit.peer, sink);
      if (sp.health_tracking) {
        health_.Record(visit.peer,
                       0.5 * network_->NominalHopLatencyMs() +
                           network_->ExpectedPeerTailDelayMs(visit.peer),
                       sent.ok());
      }
      if (sent.ok()) {
        delivered = true;
        break;
      }
      if (!network_->IsAlive(visit.peer) || !network_->IsAlive(sink)) break;
    }
    // Hedged duplicate toward predictably tardy peers: the sink's hedge
    // timer (hedge_delay_factor x the nominal reply time) elapses before a
    // straggler's reply can arrive, so it asks for one duplicate copy; the
    // (peer, selection_seq) dedup absorbs double deliveries.
    bool hedge_delivered = false;
    if (sp.hedged_replies && network_->IsAlive(visit.peer) &&
        network_->IsAlive(sink)) {
      double hedge_due =
          sp.hedge_delay_factor * network_->NominalHopLatencyMs();
      if (network_->ExpectedPeerTailDelayMs(visit.peer) > hedge_due &&
          consume_retry()) {
        ++hedges;
        hedge_delivered = network_
                              ->SendDirect(net::MessageType::kAggregateReply,
                                           visit.peer, sink)
                              .ok();
        // The hedge pair is recorded only when some copy survives: a pair
        // where primary, retries and hedge were all lost in transit never
        // resolves to an accepted observation, which is loss, not a
        // dedup-accounting violation.
        if (history != nullptr && (delivered || hedge_delivered)) {
          history->Record(net::HistoryEventKind::kHedgeDue,
                          net::MessageType::kAggregateReply, visit.peer, sink);
          history->Record(net::HistoryEventKind::kHedge,
                          net::MessageType::kAggregateReply, visit.peer, sink,
                          1, tag);
        }
      }
    }
    if (delivered) {
      observations.push_back(obs);
      if (history != nullptr) {
        history->Record(net::HistoryEventKind::kDedupAccept,
                        net::MessageType::kAggregateReply, visit.peer, sink, 1,
                        tag);
      }
      if (hedge_delivered) {
        ++duplicates_dropped;
        if (history != nullptr) {
          history->Record(net::HistoryEventKind::kDedupDrop,
                          net::MessageType::kAggregateReply, visit.peer, sink,
                          1, tag);
        }
      }
    } else if (hedge_delivered) {
      // The primary (and its retries) were lost but the hedged copy got
      // through: it is the one accepted observation for this selection.
      delivered = true;
      observations.push_back(obs);
      if (history != nullptr) {
        history->Record(net::HistoryEventKind::kDedupAccept,
                        net::MessageType::kAggregateReply, visit.peer, sink, 1,
                        tag);
      }
    }
    // Replayed copies carry the original's (query_id, peer, phase,
    // selection_seq) tag, so every delivered copy after the first collides
    // with an already-seen tag and is dropped before the quorum count.
    for (size_t replay = 0; replay < replays; ++replay) {
      util::Status sent = network_->SendDirect(
          net::MessageType::kAggregateReply, visit.peer, sink);
      if (!sent.ok()) continue;
      if (delivered) {
        if (util::BugArmed(util::InjectedBug::kDisableReplyDedup)) {
          // Injected bug: the sink forgets it has seen this tag and counts
          // the replayed copy as a fresh observation.
          observations.push_back(obs);
          if (history != nullptr) {
            history->Record(net::HistoryEventKind::kDedupAccept,
                            net::MessageType::kAggregateReply, visit.peer,
                            sink, 1, tag);
          }
          continue;
        }
        ++duplicates_dropped;
        if (history != nullptr) {
          history->Record(net::HistoryEventKind::kDedupDrop,
                          net::MessageType::kAggregateReply, visit.peer, sink,
                          1, tag);
        }
      } else {
        // The original was lost but a replayed copy got through: the sink
        // cannot tell it from a retransmit and accepts it once.
        observations.push_back(obs);
        delivered = true;
        if (history != nullptr) {
          history->Record(net::HistoryEventKind::kDedupAccept,
                          net::MessageType::kAggregateReply, visit.peer, sink,
                          1, tag);
        }
      }
    }
  }
  const size_t delivered_count = observations.size();
  const auto quorum = static_cast<size_t>(std::ceil(
      params_.min_observation_quorum * static_cast<double>(count)));
  if (count > 0 && delivered_count < quorum &&
      !util::BugArmed(util::InjectedBug::kSkipQuorumCheck)) {
    return util::Status::Unavailable(
        "observation quorum not met: " + std::to_string(delivered_count) +
        "/" + std::to_string(count) + " delivered");
  }
  if (stats != nullptr) {
    stats->requested = count;
    stats->delivered = delivered_count;
    stats->lost = count - delivered_count;
    stats->reply_retransmits = retransmits;
    stats->walk_restarts = sampled->restarts;
    stats->duplicate_replies = duplicates_dropped;
    stats->hedges = hedges;
    stats->straggler_skips = sampled->straggler_skips;
  }
  return observations;
}

std::vector<WeightedObservation> TwoPhaseEngine::ToWeighted(
    const std::vector<PeerObservation>& observations, query::AggregateOp op) {
  std::vector<WeightedObservation> weighted;
  weighted.reserve(observations.size());
  for (const PeerObservation& obs : observations) {
    weighted.push_back(
        {obs.aggregate.ValueFor(op), obs.stationary_weight});
  }
  return weighted;
}

util::Result<ApproximateAnswer> TwoPhaseEngine::ExecuteCentral(
    const query::AggregateQuery& query, graph::NodeId sink, util::Rng& rng) {
  net::CostSnapshot before = network_->cost_snapshot();
  const net::StragglerPolicy& sp = params_.straggler;
  if (sp.enabled()) {
    health_.Configure(sp);
    health_.Reset(network_->num_peers());
  }
  // Query-scoped retry/hedge budget, shared by both phases.
  size_t retry_budget_left =
      sp.retry_budget == 0 ? SIZE_MAX : sp.retry_budget;

  // ---- Phase I: sniff the network. ----
  CollectionStats phase1_stats;
  auto phase1 = CollectObservations(query, sink, params_.phase1_peers, rng,
                                    &phase1_stats, &retry_budget_left);
  if (!phase1.ok()) return phase1.status();
  if (phase1->size() < 2) {
    return util::Status::Unavailable(
        "phase I delivered too few observations to cross-validate");
  }

  const bool is_avg = query.op == query::AggregateOp::kAvg;
  CrossValidationResult cv =
      is_avg ? CrossValidateRatio(*phase1, total_weight_, params_.cv_repeats,
                                  rng)
             : CrossValidate(ToWeighted(*phase1, query.op), total_weight_,
                             params_.cv_repeats, rng);

  // The paper normalizes errors to [0,1] against the *total* aggregate
  // (N for COUNT; Sec. 3.4: dividing the variance by N^2 yields the squared
  // relative-count error). Estimate that total from the same phase-I
  // sample: every reply already carries the peer's tuple count and scaled
  // all-tuples sum.
  double estimated_total = EstimateTotal(*phase1, query.op, total_weight_);
  if (is_avg || estimated_total <= 0.0 ||
      params_.normalization == ErrorNormalization::kQueryAnswer) {
    // AVG never scales with selectivity; kQueryAnswer opts COUNT/SUM into
    // the same answer-relative guarantee.
    estimated_total = std::fabs(cv.estimate);
  }
  double cv_normalized =
      estimated_total == 0.0 ? 0.0 : cv.cv_error / estimated_total;

  // ---- Plan: size phase II from the cross-validation error. ----
  // Sized from the observations that actually arrived (== phase1_peers on
  // the fault-free path): the cross-validation error was measured on those.
  size_t phase2_peers = PhaseTwoSampleSize(
      phase1->size(), cv_normalized, query.required_error,
      params_.min_phase2_peers, MaxPhase2Peers());

  // ---- Phase II: execute the plan. ----
  CollectionStats phase2_stats;
  auto phase2 = CollectObservations(query, sink, phase2_peers, rng,
                                    &phase2_stats, &retry_budget_left);
  if (!phase2.ok()) return phase2.status();

  std::vector<PeerObservation> final_set;
  if (params_.include_phase1_observations) {
    final_set = *phase1;
    final_set.insert(final_set.end(), phase2->begin(), phase2->end());
  } else {
    final_set = *phase2;
  }

  // ---- Byzantine defenses (RobustnessPolicy). ----
  const RobustnessPolicy& policy = params_.robustness;
  size_t suspected =
      AuditObservationDegrees(network_, policy, sink, &final_set, rng);
  if (final_set.empty()) {
    return util::Status::Unavailable(
        "degree audit rejected every observation");
  }

  ApproximateAnswer answer;
  answer.suspected_peers = suspected;
  if (is_avg) {
    // The ratio path is not robustified (known gap, see docs/ALGORITHM.md):
    // it still benefits from the audit and dedup above.
    answer.estimate = RatioEstimate(final_set, total_weight_);
    // Delta-method style variability proxy: variance of the ratio across
    // the CV halves is already folded into cv_error; report the count-based
    // variance scaled by the ratio as a conservative stand-in.
    answer.variance = 0.0;
  } else {
    auto weighted = ToWeighted(final_set, query.op);
    if (policy.enabled()) {
      RobustEstimate robust =
          RobustHorvitzThompson(weighted, total_weight_, policy);
      answer.estimate = robust.estimate;
      answer.variance = robust.variance;
      answer.trimmed_mass = robust.trimmed_mass;
    } else {
      answer.estimate = HorvitzThompson(weighted, total_weight_);
      answer.variance = HorvitzThompsonVariance(weighted, total_weight_);
    }
  }
  // ---- Degradation accounting. ----
  answer.observations_lost = phase1_stats.lost + phase2_stats.lost;
  answer.walk_restarts =
      phase1_stats.walk_restarts + phase2_stats.walk_restarts;
  answer.duplicate_replies =
      phase1_stats.duplicate_replies + phase2_stats.duplicate_replies;
  answer.hedges_sent = phase1_stats.hedges + phase2_stats.hedges;
  answer.stragglers_skipped =
      phase1_stats.straggler_skips + phase2_stats.straggler_skips;
  answer.degraded = answer.observations_lost > 0 || suspected > 0 ||
                    answer.trimmed_mass > 0.0;
  double inflation = 1.0;
  if (answer.observations_lost > 0) {
    // The HT reweighting over the survivors is unbiased when loss is
    // independent of the data, but a crashed peer's contribution vanishes
    // *with* its data; widen the interval by the root of the loss ratio to
    // acknowledge that the loss mechanism may not be random.
    size_t requested = phase1_stats.requested + phase2_stats.requested;
    size_t arrived = phase1_stats.delivered + phase2_stats.delivered;
    inflation = std::sqrt(static_cast<double>(requested) /
                          static_cast<double>(std::max<size_t>(arrived, 1)));
  }
  // Every observation the defenses discarded or clamped is information the
  // CI no longer reflects; widen by the root of the surviving fraction,
  // mirroring the loss widening above.
  double discarded = std::min(answer.trimmed_mass, 0.9);
  if (discarded > 0.0) inflation *= std::sqrt(1.0 / (1.0 - discarded));
  answer.ci_half_width_95 = kZ95 * std::sqrt(answer.variance) * inflation;
  answer.estimated_total = estimated_total;
  answer.cv_error_relative = cv_normalized;
  answer.phase1_peers = phase1->size();
  answer.phase2_peers = phase2->size();
  // The error bound actually achieved, on required_error's scale.
  double denom = estimated_total > 0.0 ? estimated_total
                                       : std::fabs(answer.estimate);
  answer.achieved_error =
      denom > 0.0 ? answer.ci_half_width_95 / denom : 0.0;
  answer.cost = net::CostDelta(network_->cost_snapshot(), before);
  answer.sample_tuples = answer.cost.tuples_sampled;
  return answer;
}

util::Result<ApproximateAnswer> TwoPhaseEngine::Execute(
    const query::AggregateQuery& query, graph::NodeId sink, util::Rng& rng) {
  if (sink >= network_->num_peers() || !network_->IsAlive(sink)) {
    return util::Status::FailedPrecondition("sink peer is not live");
  }
  switch (query.op) {
    case query::AggregateOp::kCount:
    case query::AggregateOp::kSum:
    case query::AggregateOp::kAvg:
      return ExecuteCentral(query, sink, rng);
    case query::AggregateOp::kMedian:
    case query::AggregateOp::kQuantile:
      return EstimateQuantileTwoPhase(*this, query, sink, rng);
    case query::AggregateOp::kDistinct:
      return EstimateDistinctTwoPhase(*this, query, sink, rng);
  }
  return util::Status::InvalidArgument("unknown aggregate operator");
}

}  // namespace p2paqp::core

#include "core/biased.h"

#include <cmath>

namespace p2paqp::core {

BiasedWalkSampler::BiasedWalkSampler(net::SimulatedNetwork* network,
                                     const query::RangePredicate& predicate,
                                     size_t jump, double floor)
    : network_(network), jump_(std::max<size_t>(1, jump)) {
  P2PAQP_CHECK(network_ != nullptr);
  P2PAQP_CHECK_GT(floor, 0.0);
  synopsis_.resize(network_->num_peers(), floor);
  for (graph::NodeId p = 0; p < network_->num_peers(); ++p) {
    const data::LocalDatabase& db = network_->peer(p).database();
    if (db.empty()) continue;
    double matches =
        static_cast<double>(db.Count(predicate.lo, predicate.hi));
    synopsis_[p] = floor + matches / static_cast<double>(db.size());
  }
}

double BiasedWalkSampler::StationaryWeight(graph::NodeId node) const {
  double neighbor_sum = 0.0;
  for (graph::NodeId v : network_->graph().neighbors(node)) {
    if (network_->IsAlive(v)) neighbor_sum += synopsis_[v];
  }
  return synopsis_[node] * neighbor_sum;
}

double BiasedWalkSampler::ExactTotalWeight() const {
  double total = 0.0;
  for (graph::NodeId p = 0; p < network_->num_peers(); ++p) {
    if (network_->IsAlive(p)) total += StationaryWeight(p);
  }
  return total;
}

util::Result<std::vector<sampling::PeerVisit>> BiasedWalkSampler::SamplePeers(
    graph::NodeId sink, size_t count, util::Rng& rng) {
  if (sink >= network_->num_peers() || !network_->IsAlive(sink)) {
    return util::Status::FailedPrecondition("sink peer is not live");
  }
  std::vector<sampling::PeerVisit> visits;
  visits.reserve(count);
  graph::NodeId current = sink;
  size_t since_selection = 0;
  size_t hops = 0;
  const size_t max_hops = 200 * count * jump_ + 2000;
  std::vector<double> weights;
  while (visits.size() < count) {
    if (++hops > max_hops) {
      return util::Status::OutOfRange("biased walk exceeded hop budget");
    }
    std::vector<graph::NodeId> neighbors = network_->AliveNeighbors(current);
    if (neighbors.empty()) {
      if (current == sink) {
        return util::Status::Unavailable("sink is isolated");
      }
      current = sink;  // Stranded: the sink re-issues the walker.
      continue;
    }
    weights.clear();
    for (graph::NodeId v : neighbors) weights.push_back(synopsis_[v]);
    graph::NodeId next = neighbors[rng.WeightedIndex(weights)];
    util::Status sent =
        network_->SendAlongEdge(net::MessageType::kWalker, current, next);
    if (!sent.ok()) {
      // Lossy transport: a live holder retries (the loop re-picks a live
      // neighbor); a crashed holder's token is re-issued by the sink. Both
      // stay bounded by the hop budget above.
      if (!network_->IsAlive(sink)) return sent;
      if (!network_->IsAlive(current)) current = sink;
      continue;
    }
    current = next;
    if (++since_selection >= jump_) {
      since_selection = 0;
      visits.push_back(
          sampling::PeerVisit{current, network_->AliveDegree(current)});
    }
  }
  return visits;
}

double SelfNormalizedEstimate(const std::vector<PeerObservation>& observations,
                              size_t num_peers, query::AggregateOp op) {
  double value_sum = 0.0;
  double weight_sum = 0.0;
  for (const PeerObservation& obs : observations) {
    if (obs.stationary_weight <= 0.0) continue;
    value_sum += obs.aggregate.ValueFor(op) / obs.stationary_weight;
    weight_sum += 1.0 / obs.stationary_weight;
  }
  if (weight_sum == 0.0) return 0.0;
  return static_cast<double>(num_peers) * value_sum / weight_sum;
}

util::Result<BiasedAnswer> EstimateBiased(net::SimulatedNetwork* network,
                                          const SystemCatalog& catalog,
                                          const query::AggregateQuery& query,
                                          graph::NodeId sink, size_t num_peers,
                                          uint64_t tuples_per_peer,
                                          double floor, util::Rng& rng) {
  net::CostSnapshot before = network->cost_snapshot();
  BiasedWalkSampler sampler(network, query.predicate, catalog.suggested_jump,
                            floor);
  auto visits = sampler.SamplePeers(sink, num_peers, rng);
  if (!visits.ok()) return visits.status();
  std::vector<PeerObservation> observations;
  observations.reserve(visits->size());
  for (const sampling::PeerVisit& visit : *visits) {
    PeerObservation obs;
    obs.peer = visit.peer;
    obs.degree = visit.degree;
    obs.stationary_weight = sampler.StationaryWeight(visit.peer);
    obs.aggregate = query::ExecuteLocal(network->peer(visit.peer).database(),
                                        query, tuples_per_peer, rng);
    network->RecordLocalExecution(visit.peer, obs.aggregate.processed_tuples,
                                  obs.aggregate.processed_tuples);
    util::Status sent = network->SendDirect(net::MessageType::kAggregateReply,
                                            visit.peer, sink);
    // The self-normalized estimator tolerates lost replies: skip them.
    if (!sent.ok()) continue;
    observations.push_back(obs);
  }
  BiasedAnswer answer;
  answer.estimate =
      SelfNormalizedEstimate(observations, catalog.num_peers, query.op);
  answer.peers_visited = observations.size();
  answer.cost = net::CostDelta(network->cost_snapshot(), before);
  return answer;
}

}  // namespace p2paqp::core

#include "core/distinct.h"

#include <cmath>
#include <unordered_map>

#include "util/logging.h"

namespace p2paqp::core {

double ChaoDistinctEstimate(const std::vector<data::Value>& sample) {
  if (sample.empty()) return 0.0;
  std::unordered_map<data::Value, uint64_t> frequency;
  for (data::Value v : sample) ++frequency[v];
  double d_obs = static_cast<double>(frequency.size());
  double f1 = 0.0;
  double f2 = 0.0;
  for (const auto& [value, count] : frequency) {
    if (count == 1) ++f1;
    if (count == 2) ++f2;
  }
  if (f2 == 0.0) {
    // Chao's bias-corrected form when no value appears exactly twice.
    return d_obs + f1 * (f1 - 1.0) / 2.0;
  }
  return d_obs + (f1 * f1) / (2.0 * f2);
}

namespace {

// Raw matching values shipped by one peer.
struct PeerSampleSet {
  std::vector<std::vector<data::Value>> per_peer;

  std::vector<data::Value> Pooled() const {
    std::vector<data::Value> all;
    for (const auto& chunk : per_peer) {
      all.insert(all.end(), chunk.begin(), chunk.end());
    }
    return all;
  }
};

// Visits peers through the engine, ships each peer's raw sub-sample of
// matching tuples to the sink (charged as kSampleReply bytes).
util::Result<PeerSampleSet> CollectRawSamples(
    TwoPhaseEngine& engine, const query::AggregateQuery& query,
    graph::NodeId sink, size_t count, util::Rng& rng) {
  auto observations = engine.CollectObservations(query, sink, count, rng);
  if (!observations.ok()) return observations.status();
  net::SimulatedNetwork* network = engine.network();
  PeerSampleSet set;
  for (const PeerObservation& obs : *observations) {
    data::Table rows = network->peer(obs.peer).database().Sample(
        engine.params().tuples_per_peer, rng);
    std::vector<data::Value> matching;
    for (const data::Tuple& t : rows) {
      if (query.Matches(t)) matching.push_back(t.value);
    }
    // Raw values ride back to the sink: 4 bytes per tuple on top of the
    // reply header — the bandwidth cost that makes these aggregates pricey.
    util::Status sent = network->SendDirect(
        net::MessageType::kSampleReply, obs.peer, sink,
        static_cast<uint32_t>(4 * matching.size()));
    // A reply lost to faults simply removes that peer's sub-sample; the
    // estimator runs on whatever reached the sink.
    if (!sent.ok()) continue;
    set.per_peer.push_back(std::move(matching));
  }
  return set;
}

}  // namespace

util::Result<ApproximateAnswer> EstimateDistinctTwoPhase(
    TwoPhaseEngine& engine, const query::AggregateQuery& query,
    graph::NodeId sink, util::Rng& rng) {
  P2PAQP_CHECK(query.op == query::AggregateOp::kDistinct);
  net::SimulatedNetwork* network = engine.network();
  net::CostSnapshot before = network->cost_snapshot();

  auto phase1 = CollectRawSamples(engine, query, sink,
                                  engine.params().phase1_peers, rng);
  if (!phase1.ok()) return phase1.status();

  // Cross-validate the Chao estimate across random halves of the peers.
  size_t m = phase1->per_peer.size();
  if (m < 4) {
    return util::Status::Unavailable("too few peers for distinct estimation");
  }
  std::vector<size_t> order(m);
  for (size_t i = 0; i < m; ++i) order[i] = i;
  size_t half = m / 2;
  double squared_sum = 0.0;
  double full_estimate = ChaoDistinctEstimate(phase1->Pooled());
  for (size_t r = 0; r < engine.params().cv_repeats; ++r) {
    rng.Shuffle(order);
    std::vector<data::Value> g1, g2;
    for (size_t i = 0; i < half; ++i) {
      const auto& chunk = phase1->per_peer[order[i]];
      g1.insert(g1.end(), chunk.begin(), chunk.end());
    }
    for (size_t i = half; i < 2 * half; ++i) {
      const auto& chunk = phase1->per_peer[order[i]];
      g2.insert(g2.end(), chunk.begin(), chunk.end());
    }
    double gap = ChaoDistinctEstimate(g1) - ChaoDistinctEstimate(g2);
    squared_sum += gap * gap;
  }
  double cv_error =
      std::sqrt(squared_sum / static_cast<double>(engine.params().cv_repeats));
  double cv_rel = full_estimate == 0.0 ? 0.0 : cv_error / full_estimate;

  size_t phase2_peers = PhaseTwoSampleSize(
      m, cv_rel, query.required_error, engine.params().min_phase2_peers,
      engine.params().max_phase2_peers == 0 ? network->num_peers()
                                            : engine.params().max_phase2_peers);

  auto phase2 = CollectRawSamples(engine, query, sink, phase2_peers, rng);
  if (!phase2.ok()) return phase2.status();

  std::vector<data::Value> pooled = phase2->Pooled();
  if (engine.params().include_phase1_observations || pooled.empty()) {
    std::vector<data::Value> p1 = phase1->Pooled();
    pooled.insert(pooled.end(), p1.begin(), p1.end());
  }

  ApproximateAnswer answer;
  answer.estimate = ChaoDistinctEstimate(pooled);
  answer.cv_error_relative = cv_rel;
  answer.phase1_peers = m;
  answer.phase2_peers = phase2->per_peer.size();
  answer.cost = net::CostDelta(network->cost_snapshot(), before);
  answer.sample_tuples = answer.cost.tuples_sampled;
  return answer;
}

}  // namespace p2paqp::core

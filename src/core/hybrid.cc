#include "core/hybrid.h"

#include "util/rng.h"

namespace p2paqp::core {

uint64_t FreshnessCache::Key(graph::NodeId peer,
                             const query::AggregateQuery& query) {
  // Mix peer id, op and predicate bounds into one 64-bit key.
  uint64_t h = peer;
  h = util::MixSeed(h ^ (static_cast<uint64_t>(query.op) << 32));
  h = util::MixSeed(h ^ (static_cast<uint64_t>(
                             static_cast<uint32_t>(query.predicate.lo))
                         << 16));
  h = util::MixSeed(h ^ static_cast<uint64_t>(
                            static_cast<uint32_t>(query.predicate.hi)));
  return h;
}

void FreshnessCache::Touch(Entry& entry) {
  if (max_entries_ == 0) return;
  lru_.splice(lru_.begin(), lru_, entry.lru_pos);
}

bool FreshnessCache::Lookup(graph::NodeId peer,
                            const query::AggregateQuery& query,
                            query::LocalAggregate* out) {
  auto it = entries_.find(Key(peer, query));
  if (it == entries_.end() ||
      epoch_ - it->second.stored_epoch > ttl_epochs_) {
    ++misses_;
    return false;
  }
  // Expired entries above stay resident until overwritten or evicted, and a
  // stale hit does NOT refresh recency — a dead entry must not displace live
  // ones in LRU order.
  Touch(it->second);
  ++hits_;
  *out = it->second.aggregate;
  return true;
}

void FreshnessCache::Store(graph::NodeId peer,
                           const query::AggregateQuery& query,
                           const query::LocalAggregate& aggregate) {
  uint64_t key = Key(peer, query);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    it->second.aggregate = aggregate;
    it->second.stored_epoch = epoch_;
    Touch(it->second);
    return;
  }
  if (max_entries_ > 0 && entries_.size() >= max_entries_) {
    uint64_t victim = lru_.back();
    lru_.pop_back();
    entries_.erase(victim);
    ++evictions_;
  }
  Entry entry;
  entry.aggregate = aggregate;
  entry.stored_epoch = epoch_;
  if (max_entries_ > 0) {
    lru_.push_front(key);
    entry.lru_pos = lru_.begin();
  }
  entries_.emplace(key, std::move(entry));
}

}  // namespace p2paqp::core

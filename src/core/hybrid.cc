#include "core/hybrid.h"

#include "util/rng.h"

namespace p2paqp::core {

uint64_t FreshnessCache::Key(graph::NodeId peer,
                             const query::AggregateQuery& query) {
  // Mix peer id, op and predicate bounds into one 64-bit key.
  uint64_t h = peer;
  h = util::MixSeed(h ^ (static_cast<uint64_t>(query.op) << 32));
  h = util::MixSeed(h ^ (static_cast<uint64_t>(
                             static_cast<uint32_t>(query.predicate.lo))
                         << 16));
  h = util::MixSeed(h ^ static_cast<uint64_t>(
                            static_cast<uint32_t>(query.predicate.hi)));
  return h;
}

bool FreshnessCache::Lookup(graph::NodeId peer,
                            const query::AggregateQuery& query,
                            query::LocalAggregate* out) {
  auto it = entries_.find(Key(peer, query));
  if (it == entries_.end() ||
      epoch_ - it->second.stored_epoch > ttl_epochs_) {
    ++misses_;
    return false;
  }
  ++hits_;
  *out = it->second.aggregate;
  return true;
}

void FreshnessCache::Store(graph::NodeId peer,
                           const query::AggregateQuery& query,
                           const query::LocalAggregate& aggregate) {
  entries_[Key(peer, query)] = Entry{aggregate, epoch_};
}

}  // namespace p2paqp::core

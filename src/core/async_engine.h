// Event-driven execution of the two-phase plan (makespan-accurate latency).
//
// The synchronous TwoPhaseEngine models one walker whose hops, local scans
// and replies happen back-to-back, so its latency ledger is a straight sum.
// In a real deployment the activity overlaps: W walkers advance in parallel,
// a selected peer scans its table while the walker already moved on, and the
// (y(p), deg(p)) replies race back to the sink over direct IP. The
// AsyncQuerySession replays exactly the same statistical plan (same sampler
// semantics, same cross-validation sizing, same estimates) on a
// discrete-event clock, so the reported makespan is the true end-to-end
// latency the paper's cost model cares about (Sec. 3.2).
#ifndef P2PAQP_CORE_ASYNC_ENGINE_H_
#define P2PAQP_CORE_ASYNC_ENGINE_H_

#include "core/two_phase.h"
#include "net/churn.h"
#include "net/event_sim.h"

namespace p2paqp::core {

struct AsyncParams {
  EngineParams engine;
  // Concurrent walkers per phase.
  size_t walkers = 4;
  // Walk mechanics (jump/burn-in); variant must be kSimple.
  sampling::WalkParams walk;
  // Mid-query churn (crash-while-walking, crash-after-sampling-before-
  // reply): when `churn` is set, it steps one epoch every
  // `churn_interval_ms` of *simulated* time while the phase has in-flight
  // work, so peers depart during the query itself. Not owned.
  net::ChurnModel* churn = nullptr;
  double churn_interval_ms = 0.0;
};

struct AsyncQueryReport {
  ApproximateAnswer answer;
  // True end-to-end simulated time from query issue to the arrival of the
  // last phase-II reply at the sink.
  double makespan_ms = 0.0;
  // Phase boundaries (when the last reply of each phase arrived).
  double phase1_done_ms = 0.0;
  uint64_t events = 0;
};

class AsyncQuerySession {
 public:
  AsyncQuerySession(net::SimulatedNetwork* network,
                    const SystemCatalog& catalog, const AsyncParams& params);

  // Runs the full adaptive two-phase COUNT/SUM/AVG plan event-driven.
  // (Median/distinct/histogram stay on the synchronous engine.)
  util::Result<AsyncQueryReport> Execute(const query::AggregateQuery& query,
                                         graph::NodeId sink, util::Rng& rng);

 private:
  // Runs one phase: `count` selections spread over the walkers; returns the
  // collected observations and completes when the last reply arrives.
  // Fault-tolerant like TwoPhaseEngine::CollectObservations: lost walker
  // tokens are re-issued by the sink with a fresh burn-in, lost replies are
  // retransmitted, and residual losses are reported through `stats` —
  // hard-failing only below engine.min_observation_quorum.
  util::Result<std::vector<PeerObservation>> RunPhase(
      net::EventQueue& events, const query::AggregateQuery& query,
      graph::NodeId sink, size_t count, util::Rng& rng,
      TwoPhaseEngine::CollectionStats* stats);

  net::SimulatedNetwork* network_;
  SystemCatalog catalog_;
  AsyncParams params_;
};

}  // namespace p2paqp::core

#endif  // P2PAQP_CORE_ASYNC_ENGINE_H_

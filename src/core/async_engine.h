// Event-driven execution of the two-phase plan (makespan-accurate latency).
//
// The synchronous TwoPhaseEngine models one walker whose hops, local scans
// and replies happen back-to-back, so its latency ledger is a straight sum.
// In a real deployment the activity overlaps: W walkers advance in parallel,
// a selected peer scans its table while the walker already moved on, and the
// (y(p), deg(p)) replies race back to the sink over direct IP. The
// AsyncQuerySession replays exactly the same statistical plan (same sampler
// semantics, same cross-validation sizing, same estimates) on a
// discrete-event clock, so the reported makespan is the true end-to-end
// latency the paper's cost model cares about (Sec. 3.2).
#ifndef P2PAQP_CORE_ASYNC_ENGINE_H_
#define P2PAQP_CORE_ASYNC_ENGINE_H_

#include <cstdint>
#include <vector>

#include "core/two_phase.h"
#include "net/arena.h"
#include "net/churn.h"
#include "net/event_sim.h"
#include "query/local_executor.h"

namespace p2paqp::core {

struct AsyncParams {
  EngineParams engine;
  // Concurrent walkers per phase.
  size_t walkers = 4;
  // Walk mechanics (jump/burn-in); variant must be kSimple.
  sampling::WalkParams walk;
  // Mid-query churn (crash-while-walking, crash-after-sampling-before-
  // reply): when `churn` is set, it steps one epoch every
  // `churn_interval_ms` of *simulated* time while the phase has in-flight
  // work, so peers depart during the query itself. Not owned.
  net::ChurnModel* churn = nullptr;
  double churn_interval_ms = 0.0;
};

struct AsyncQueryReport {
  ApproximateAnswer answer;
  // True end-to-end simulated time from query issue to the arrival of the
  // last phase-II reply at the sink.
  double makespan_ms = 0.0;
  // Phase boundaries (when the last reply of each phase arrived).
  double phase1_done_ms = 0.0;
  uint64_t events = 0;
  // Heap allocations made on the calling thread while the two phases' event
  // loops drained — the steady-state send/deliver/timeout path. 0 on a warm
  // session in fault-free runs; bench/scale_world.cc divides by `events` for
  // the gated steady_state_allocs_per_event metric.
  uint64_t drain_allocs = 0;
};

// Hot-path working storage owned by a session and reused across phases and
// queries. Capacities plateau after the first query (reply arena at the
// peak in-flight reply count, scratches at the sub-sample budget and the
// maximum live degree), which is what makes the drain windows measured by
// AsyncQueryReport::drain_allocs allocation-free once warm.
struct AsyncHotBuffers {
  // In-flight reply payloads: one recycled slot per reply copy racing to
  // the sink, released when the copy arrives (accepted or deduped).
  net::SlotArena<PeerObservation> reply_arena;
  // Per-selection local-scan scratch (sampled indices, measures, sampler
  // marks).
  query::LocalExecScratch exec;
  // Per-hop live-neighbor buffer shared by all walkers (steps are serial on
  // the event clock).
  std::vector<graph::NodeId> neighbors;
  // Sink-side reply dedup, one flag per selection_seq of the current phase.
  // A seq is issued to exactly one peer per collection round and tampering
  // never rewrites reply identity, so the paper's (peer, selection_seq) tag
  // collapses to the seq alone — a flat byte per selection instead of an
  // ordered set of pairs.
  std::vector<uint8_t> seen_seq;
  // Walker state, struct-of-arrays: the batched step kernel walks these
  // linearly and prefetches the *next* walkers' adjacency while decoding the
  // current one's (graph::Graph::PrefetchOffset/PrefetchNeighbors).
  std::vector<graph::NodeId> walker_current;
  std::vector<size_t> walker_burn_left;
  std::vector<size_t> walker_since_selection;
  std::vector<size_t> walker_remaining;
  // Incarnation of walker_current captured when it received the token; a
  // mismatch at hop time means the holder died and rejoined between events.
  std::vector<uint64_t> walker_incarnation;
  // Per-peer EWMA latency/failure scoreboard feeding the circuit breaker
  // (straggler policy). Reset per query *before* the drain (flat arrays, so
  // Record()/Tripped() are allocation-free inside the event loop).
  net::PeerHealthBoard health;
};

class AsyncQuerySession {
 public:
  AsyncQuerySession(net::SimulatedNetwork* network,
                    const SystemCatalog& catalog, const AsyncParams& params);

  // Runs the full adaptive two-phase COUNT/SUM/AVG plan event-driven.
  // (Median/distinct/histogram stay on the synchronous engine.)
  util::Result<AsyncQueryReport> Execute(const query::AggregateQuery& query,
                                         graph::NodeId sink, util::Rng& rng);

  // Recycling telemetry of the reply-payload arena (tests assert live() == 0
  // and acquired() == released() once a query drains, even when churn kills
  // peers with replies in flight).
  const net::ArenaStats& reply_arena_stats() const {
    return buffers_.reply_arena.stats();
  }

 private:
  // Runs one phase: `count` selections spread over the walkers; returns the
  // collected observations and completes when the last reply arrives.
  // Fault-tolerant like TwoPhaseEngine::CollectObservations: lost walker
  // tokens are re-issued by the sink with a fresh burn-in, lost replies are
  // retransmitted, and residual losses are reported through `stats` —
  // hard-failing only below engine.min_observation_quorum. Allocations made
  // while the event loop drains are added to `*drain_allocs`.
  //
  // `deadline_ms` is the query deadline budget REMAINING at phase start
  // (+inf = none): walker steps at or past it stop scheduling work, replies
  // arriving strictly after it are discarded as lost, and the quorum
  // hard-fail is waived so the caller can return a deadline-degraded
  // anytime answer. `retry_budget` is the query-scoped straggler
  // retry/hedge allowance shared by both phases (SIZE_MAX = unlimited).
  //
  // `*elapsed_ms` receives the phase's wall clock: from phase start to the
  // last arrival the sink *needed* (or exactly the remaining deadline when
  // it fired). The event queue drains further — losing hedge copies and
  // deduped replays resolve after the answer is ready so the ledger and the
  // reply arena balance — but that drain is bookkeeping, not waiting, and
  // never counts toward latency.
  util::Result<std::vector<PeerObservation>> RunPhase(
      net::EventQueue& events, const query::AggregateQuery& query,
      graph::NodeId sink, size_t count, util::Rng& rng,
      TwoPhaseEngine::CollectionStats* stats, uint64_t* drain_allocs,
      double deadline_ms, size_t* retry_budget, double* elapsed_ms);

  net::SimulatedNetwork* network_;
  SystemCatalog catalog_;
  AsyncParams params_;
  AsyncHotBuffers buffers_;
};

}  // namespace p2paqp::core

#endif  // P2PAQP_CORE_ASYNC_ENGINE_H_

// The paper's primary contribution: the adaptive two-phase sampling engine
// for approximate aggregation queries over an unstructured P2P network
// (Sec. 4).
//
// Phase I walks the overlay, collecting scaled local aggregates and degrees
// from m peers; the sink cross-validates the half-sample estimates to gauge
// how badly the data is clustered, sizes phase II accordingly, re-walks, and
// returns the Horvitz-Thompson estimate with the requested error bound met
// with high probability.
#ifndef P2PAQP_CORE_TWO_PHASE_H_
#define P2PAQP_CORE_TWO_PHASE_H_

#include <memory>
#include <string>
#include <vector>

#include "core/catalog.h"
#include "core/cross_validation.h"
#include "core/estimator.h"
#include "core/robust_estimator.h"
#include "net/health.h"
#include "net/network.h"
#include "query/local_executor.h"
#include "query/query.h"
#include "sampling/samplers.h"
#include "util/rng.h"
#include "util/status.h"

namespace p2paqp::core {

// What the required error (and the cross-validation error driving phase-II
// sizing) is measured relative to.
enum class ErrorNormalization {
  // |err| / total aggregate (N for COUNT): the paper's Sec. 3.4 derivation
  // ("divide the variance by N^2 ... the relative count aggregate") and its
  // [0,1]-normalized figures. Low-selectivity queries get loose absolute
  // targets.
  kTotalAggregate = 0,
  // |err| / query answer: a constant *relative* guarantee regardless of
  // selectivity; low-selectivity queries get proportionally tight absolute
  // targets (and bigger phase-II plans).
  kQueryAnswer,
};

struct EngineParams {
  // m: peers selected in phase I (the paper derives it from the initial
  // sample size r_orig as m = r_orig / t).
  size_t phase1_peers = 80;
  ErrorNormalization normalization = ErrorNormalization::kTotalAggregate;
  // t: sub-sampling budget per visited peer (0 = scan everything).
  uint64_t tuples_per_peer = 25;
  // How peers draw the t tuples: independent uniform tuples, or whole disk
  // blocks (cheaper local I/O; the intra-block correlation surfaces in the
  // cross-validation and is paid for with extra peers — Sec. 4).
  query::SubSampleMode subsample_mode = query::SubSampleMode::kUniformTuples;
  size_t block_size = 8;
  // Random halvings averaged by the cross-validation step.
  size_t cv_repeats = 10;
  // Clamps on the phase-II peer count m'.
  size_t min_phase2_peers = 4;
  size_t max_phase2_peers = 0;  // 0 = number of peers in the network.
  // If true, phase-I observations join the final estimate (cheaper but the
  // paper's plan uses phase II only; kept as an ablation switch).
  bool include_phase1_observations = false;
  // --- Fault tolerance ----------------------------------------------------
  // Extra send attempts for a (y(p), deg(p)) reply lost in transit before
  // the sink gives the observation up. Crashed peers cannot retransmit; a
  // fault-free network never retransmits.
  size_t reply_retransmits = 2;
  // Hard-fail a collection that delivers fewer than this fraction of the
  // requested observations; above it the engine degrades gracefully
  // (estimate reweighted over the survivors, CI widened, `degraded` set).
  double min_observation_quorum = 0.25;
  // --- Byzantine tolerance ------------------------------------------------
  // Sink-side defenses against lying peers (robust_estimator.h). The
  // all-default policy keeps the original estimation path bit-identical.
  RobustnessPolicy robustness;
  // --- Straggler resilience (net/health.h) --------------------------------
  // Walk-Not-Wait stepping, hedged replies, retransmit backoff and the
  // health circuit breaker. All-default = off: legacy behavior and RNG
  // streams, bit for bit.
  net::StragglerPolicy straggler;
  // Deadline on the simulated event clock (async engine only; 0 = none).
  // When it fires mid-query, the engine stops launching work and returns an
  // anytime answer: the current estimate over whatever replies arrived by
  // the deadline, quorum bypassed, CI widened through the PR 1
  // degraded-answer path, `deadline_hit` set.
  double deadline_ms = 0.0;
};

// Pluggable peer-side result cache enabling the hybrid pre-computation
// extension (core/hybrid.h). Not owned by the engine.
class LocalResultCache {
 public:
  virtual ~LocalResultCache() = default;
  // Returns true and fills `out` when `peer` holds a fresh cached result
  // for this query.
  virtual bool Lookup(graph::NodeId peer, const query::AggregateQuery& query,
                      query::LocalAggregate* out) = 0;
  virtual void Store(graph::NodeId peer, const query::AggregateQuery& query,
                     const query::LocalAggregate& aggregate) = 0;
};

struct ApproximateAnswer {
  double estimate = 0.0;
  // Estimated Var[y''] and the derived 95% normal confidence half-width.
  double variance = 0.0;
  double ci_half_width_95 = 0.0;
  // Estimated total aggregate over the whole database (N for COUNT, the
  // all-tuples sum for SUM): errors are normalized against this, matching
  // the paper's [0,1] error scale (Sec. 3.4 / Sec. 5.5).
  double estimated_total = 0.0;
  // Normalized cross-validation error measured in phase I (cv / total).
  double cv_error_relative = 0.0;
  size_t phase1_peers = 0;
  size_t phase2_peers = 0;
  // Tuples drawn into the sample across both phases — the paper's latency
  // surrogate ("sample size" in Figs. 4-16).
  uint64_t sample_tuples = 0;
  // Full cost vector attributed to this query.
  net::CostSnapshot cost;

  // --- Degradation report (message loss / mid-query churn) ----------------
  // True when requested observations were lost to faults or churn. The
  // estimate is then the Horvitz-Thompson reweighting over the replies that
  // arrived (each divided by its own selection probability, so the
  // estimator stays unbiased under selection-independent loss) and
  // ci_half_width_95 is widened by sqrt(requested / arrived).
  bool degraded = false;
  // Observations requested but never delivered, across both phases.
  size_t observations_lost = 0;
  // Walker tokens the sink had to re-issue (crashed holders, strands).
  size_t walk_restarts = 0;
  // The error bound actually achieved: the (possibly widened) 95% CI
  // half-width normalized like required_error. 0 when not computed.
  double achieved_error = 0.0;

  // --- Audit report (Byzantine defenses, RobustnessPolicy) ----------------
  // Peers whose claimed degree failed the neighbor-attestation audit; their
  // observations were discarded before estimation.
  size_t suspected_peers = 0;
  // Fraction of final observations screened, trimmed, or clamped by the
  // robust estimator (0 on the plain path).
  double trimmed_mass = 0.0;
  // Duplicate (replayed) replies the sink discarded before the quorum count.
  size_t duplicate_replies = 0;

  // --- Straggler report (StragglerPolicy / EngineParams.deadline_ms) ------
  // True when the deadline fired before collection finished: the answer is
  // the anytime estimate over the replies that beat the deadline.
  bool deadline_hit = false;
  // Hedged duplicate replies the sink requested from slow peers.
  size_t hedges_sent = 0;
  // Walk-Not-Wait forks plus breaker skips across both phases.
  size_t stragglers_skipped = 0;

  std::string ToString() const;
};

// Everything phase I ships to the sink for one selected peer.
struct PeerObservation {
  graph::NodeId peer = graph::kInvalidNode;
  uint32_t degree = 0;
  double stationary_weight = 0.0;
  query::LocalAggregate aggregate;
  // Position of this selection within its collection round. Replies are
  // tagged (query_id, peer, phase, selection_seq) on the wire; the sink
  // dedupes on the full tag, so a replayed copy (same seq) is dropped while
  // a legitimate with-replacement reselection (fresh seq) is kept.
  size_t selection_seq = 0;
};

// Applies an installed adversary's reply tampering to one outgoing
// observation: degree misreport (the shipped degree *and* the stationary
// weight the sink will divide by follow the lie) and aggregate corruption
// (count, sum and total-sum values scaled/sign-flipped/blown up). Returns
// the number of replayed duplicate copies the peer additionally pushes at
// the sink. No-op returning 0 for honest peers or a null injector.
size_t TamperObservation(net::AdversaryInjector* adversary,
                         PeerObservation* obs);

// Degree cross-validation: for each distinct peer in `observations`, the
// sink probes `policy.degree_audit_probes` uniformly-chosen slots of the
// claimed adjacency list. A genuine slot resolves to a real neighbor, which
// attests; a fabricated slot (degree inflation) resolves to a random peer
// that denies unless it colludes. Probes and attestations ride SendDirect,
// so the installed FaultPlan can lose them — a lost round is inconclusive
// and votes for neither side. Peers whose delivered denials exceed
// policy.degree_audit_denial_threshold are removed from `observations`;
// returns how many peers were removed. Draws from `rng` only when the
// policy requests probes.
size_t AuditObservationDegrees(net::SimulatedNetwork* network,
                               const RobustnessPolicy& policy,
                               graph::NodeId sink,
                               std::vector<PeerObservation>* observations,
                               util::Rng& rng);

class TwoPhaseEngine {
 public:
  // Uses the paper's sampler: a jump-`catalog.suggested_jump` random walk.
  TwoPhaseEngine(net::SimulatedNetwork* network, const SystemCatalog& catalog,
                 const EngineParams& params);

  // Custom sampler (baselines, biased walks, oracle). `total_weight` is the
  // normalizer turning the sampler's stationary weights into probabilities
  // (2|E| for degree weights, M for uniform weights).
  TwoPhaseEngine(net::SimulatedNetwork* network, const SystemCatalog& catalog,
                 const EngineParams& params,
                 std::unique_ptr<sampling::PeerSampler> sampler,
                 double total_weight);

  // Answers COUNT / SUM / AVG / MEDIAN / QUANTILE / DISTINCT queries with
  // the adaptive two-phase plan. The error target is query.required_error.
  util::Result<ApproximateAnswer> Execute(const query::AggregateQuery& query,
                                          graph::NodeId sink, util::Rng& rng);

  // Per-collection fault-recovery accounting.
  struct CollectionStats {
    size_t requested = 0;
    size_t delivered = 0;
    size_t lost = 0;  // requested - delivered.
    size_t reply_retransmits = 0;
    size_t walk_restarts = 0;
    // Replayed/duplicate replies the sink dropped (never quorum-counted).
    size_t duplicate_replies = 0;
    // Hedged duplicates issued to predicted-slow peers.
    size_t hedges = 0;
    // Walk-Not-Wait forks + breaker skips during sampling.
    size_t straggler_skips = 0;
    // The collection was cut short by EngineParams.deadline_ms.
    bool deadline_hit = false;
  };

  // Visits `count` peers via the engine's sampler and returns their shipped
  // observations (local execution, cost accounting and reply messages
  // included). Exposed for the median/distinct paths and for tests.
  //
  // Fault-tolerant: lost walker tokens are re-issued by the sampler, a
  // reply lost in transit is retransmitted after a sink-side timeout (up to
  // params().reply_retransmits extra attempts), and residual losses are
  // reported through `stats` instead of failing the call. Hard-fails only
  // when fewer than params().min_observation_quorum of the requested
  // observations arrive (or on non-retryable errors such as a dead sink).
  // `retry_budget_left` (optional) is the query-scoped budget shared across
  // phases: retries and hedges decrement it and stop when it hits 0. When
  // null and params().straggler.retry_budget > 0, each collection gets its
  // own budget.
  util::Result<std::vector<PeerObservation>> CollectObservations(
      const query::AggregateQuery& query, graph::NodeId sink, size_t count,
      util::Rng& rng, CollectionStats* stats = nullptr,
      size_t* retry_budget_left = nullptr);

  // Hybrid extension hook; pass nullptr to disable. Not owned.
  void set_cache(LocalResultCache* cache) { cache_ = cache; }

  double total_weight() const { return total_weight_; }
  const EngineParams& params() const { return params_; }
  const SystemCatalog& catalog() const { return catalog_; }
  net::SimulatedNetwork* network() { return network_; }

 private:
  // COUNT / SUM / AVG common path.
  util::Result<ApproximateAnswer> ExecuteCentral(
      const query::AggregateQuery& query, graph::NodeId sink, util::Rng& rng);

  // Turns observations into per-op WeightedObservations.
  static std::vector<WeightedObservation> ToWeighted(
      const std::vector<PeerObservation>& observations,
      query::AggregateOp op);

  size_t MaxPhase2Peers() const;

  net::SimulatedNetwork* network_;
  SystemCatalog catalog_;
  EngineParams params_;
  // Reply-latency/failure scoreboard feeding the walk's circuit breaker.
  // Declared before sampler_ so the default sampler's WalkParams can point
  // at it. Reset per Execute() when the straggler policy is enabled.
  net::PeerHealthBoard health_;
  std::unique_ptr<sampling::PeerSampler> sampler_;
  double total_weight_;
  LocalResultCache* cache_ = nullptr;
};

}  // namespace p2paqp::core

#endif  // P2PAQP_CORE_TWO_PHASE_H_

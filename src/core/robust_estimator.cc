#include "core/robust_estimator.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/statistics.h"

namespace p2paqp::core {

namespace {

// Normal-consistency constant: for Gaussian data 1.4826 * MAD estimates the
// standard deviation, so mad_cutoff reads in sigma-equivalents.
constexpr double kMadScale = 1.4826;

double PerPeerEstimate(const WeightedObservation& obs, double total_weight) {
  if (obs.weight <= 0.0) return 0.0;
  return obs.value * total_weight / obs.weight;
}

// Per-tail trim count: clamped so at least one observation survives even for
// a 100% trim request (k <= (n-1)/2 leaves the middle element(s)).
size_t TrimCount(size_t n, double trim_fraction) {
  if (trim_fraction <= 0.0 || n == 0) return 0;
  auto k = static_cast<size_t>(std::floor(trim_fraction * static_cast<double>(n)));
  return std::min(k, (n - 1) / 2);
}

}  // namespace

const char* RobustEstimatorKindToString(RobustEstimatorKind kind) {
  switch (kind) {
    case RobustEstimatorKind::kPlain:
      return "plain";
    case RobustEstimatorKind::kTrimmed:
      return "trimmed";
    case RobustEstimatorKind::kWinsorized:
      return "winsorized";
  }
  return "unknown";
}

double MedianOf(std::vector<double> values) {
  if (values.empty()) return 0.0;
  size_t mid = values.size() / 2;
  std::nth_element(values.begin(), values.begin() + mid, values.end());
  double upper = values[mid];
  if (values.size() % 2 == 1) return upper;
  double lower = *std::max_element(values.begin(), values.begin() + mid);
  return 0.5 * (lower + upper);
}

double MadAround(const std::vector<double>& values, double center) {
  if (values.empty()) return 0.0;
  std::vector<double> deviations;
  deviations.reserve(values.size());
  for (double v : values) deviations.push_back(std::abs(v - center));
  return MedianOf(std::move(deviations));
}

std::vector<size_t> MadScreenIndices(const std::vector<double>& values,
                                     double cutoff) {
  std::vector<size_t> keep;
  keep.reserve(values.size());
  if (cutoff <= 0.0 || values.size() < 3) {
    for (size_t i = 0; i < values.size(); ++i) keep.push_back(i);
    return keep;
  }
  double median = MedianOf(values);
  // Double MAD: separate scales for the two sides of the median. HT
  // contributions (value * total_weight / weight) are strongly right-skewed
  // — low-degree peers legitimately contribute many times the median — so a
  // symmetric MAD reads that genuine tail as outliers and biases the
  // estimate down. Measuring each tail against its own spread keeps the
  // honest tail while still screening fabricated contributions that sit far
  // outside even the wide side's range.
  std::vector<double> below, above;
  for (double v : values) {
    if (v <= median) below.push_back(std::abs(v - median));
    if (v >= median) above.push_back(std::abs(v - median));
  }
  double mad_below = MedianOf(std::move(below));
  double mad_above = MedianOf(std::move(above));
  double mad_symmetric = MadAround(values, median);
  // A degenerate side (more than half its points exactly at the median)
  // borrows the overall scale; if that is zero too there is nothing to
  // screen against and everything passes.
  if (mad_below <= 0.0) mad_below = mad_symmetric;
  if (mad_above <= 0.0) mad_above = mad_symmetric;
  if (mad_below <= 0.0 && mad_above <= 0.0) {
    for (size_t i = 0; i < values.size(); ++i) keep.push_back(i);
    return keep;
  }
  for (size_t i = 0; i < values.size(); ++i) {
    double deviation = values[i] - median;
    double mad = deviation < 0.0 ? mad_below : mad_above;
    if (mad <= 0.0 || std::abs(deviation) <= cutoff * kMadScale * mad) {
      keep.push_back(i);
    }
  }
  return keep;
}

RobustEstimate RobustHorvitzThompson(
    const std::vector<WeightedObservation>& observations, double total_weight,
    const RobustnessPolicy& policy) {
  P2PAQP_CHECK(!observations.empty());
  P2PAQP_CHECK_GT(total_weight, 0.0);
  std::vector<double> estimates;
  estimates.reserve(observations.size());
  for (const WeightedObservation& obs : observations) {
    estimates.push_back(PerPeerEstimate(obs, total_weight));
  }

  RobustEstimate result;
  std::vector<size_t> keep = MadScreenIndices(estimates, policy.mad_cutoff);
  result.screened = estimates.size() - keep.size();
  std::vector<double> survivors;
  survivors.reserve(keep.size());
  for (size_t i : keep) survivors.push_back(estimates[i]);
  std::sort(survivors.begin(), survivors.end());

  size_t n = survivors.size();
  size_t k = policy.estimator == RobustEstimatorKind::kPlain
                 ? 0
                 : TrimCount(n, policy.trim_fraction);
  size_t altered = result.screened;
  util::RunningStat stat;
  switch (policy.estimator) {
    case RobustEstimatorKind::kPlain:
    case RobustEstimatorKind::kTrimmed:
      for (size_t i = k; i < n - k; ++i) stat.Add(survivors[i]);
      altered += 2 * k;
      break;
    case RobustEstimatorKind::kWinsorized:
      for (size_t i = 0; i < n; ++i) {
        double clamped = std::clamp(survivors[i], survivors[k],
                                    survivors[n - 1 - k]);
        if (clamped != survivors[i]) ++altered;
        stat.Add(clamped);
      }
      break;
  }
  result.used = stat.count();
  result.estimate = stat.mean();
  result.variance = stat.count() >= 2
                        ? stat.variance() / static_cast<double>(stat.count())
                        : 0.0;
  result.trimmed_mass =
      static_cast<double>(altered) / static_cast<double>(estimates.size());
  return result;
}

}  // namespace p2paqp::core

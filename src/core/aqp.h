// Umbrella header: everything a client needs to run approximate aggregation
// queries over a simulated unstructured P2P network.
//
//   #include "core/aqp.h"
//
//   util::Rng rng(42);
//   auto topo = topology::MakeTopology({...}, rng);
//   auto db = data::GenerateDataset({...}, rng);
//   auto parts = data::PartitionAcrossPeers(*db, topo->graph, {...}, rng);
//   auto net = net::SimulatedNetwork::Make(std::move(topo->graph),
//                                          std::move(*parts), {}, 7);
//   core::SystemCatalog cat = core::MakeCatalog(net->graph(), 10, 50);
//   core::TwoPhaseEngine engine(&*net, cat, {});
//   auto answer = engine.Execute({.op = query::AggregateOp::kCount,
//                                 .predicate = {1, 30},
//                                 .required_error = 0.1},
//                                /*sink=*/0, rng);
#ifndef P2PAQP_CORE_AQP_H_
#define P2PAQP_CORE_AQP_H_

#include "core/async_engine.h"
#include "core/baselines.h"
#include "core/biased.h"
#include "core/catalog.h"
#include "core/cross_validation.h"
#include "core/decentralized_catalog.h"
#include "core/distinct.h"
#include "core/estimator.h"
#include "core/histogram_estimator.h"
#include "core/hybrid.h"
#include "core/median.h"
#include "core/robust_estimator.h"
#include "core/two_phase.h"
#include "data/generator.h"
#include "data/partitioner.h"
#include "net/churn.h"
#include "net/event_sim.h"
#include "net/network.h"
#include "net/overlay_manager.h"
#include "net/protocol.h"
#include "query/local_executor.h"
#include "query/query.h"
#include "sampling/convergence.h"
#include "sampling/samplers.h"
#include "topology/clustered.h"
#include "topology/factory.h"
#include "topology/gnutella.h"
#include "topology/power_law.h"
#include "topology/random.h"

#endif  // P2PAQP_CORE_AQP_H_

// Byzantine-robust Horvitz-Thompson estimation.
//
// Plain HT (estimator.h) averages y(s)/prob(s) and is therefore moved
// arbitrarily far by a single fabricated contribution: a peer that scales
// its y(s) by k, or deflates its claimed degree by k, shifts the mean by
// ~k/m of its honest share. The estimators here bound that influence at the
// sink without trusting any individual peer:
//
//   - MAD screening drops contributions further than `mad_cutoff` scaled
//     median-absolute-deviations from the median — the classic breakdown-0.5
//     outlier filter, in its double-MAD form (each side of the median
//     measured against its own spread) so the heavy right tail genuine HT
//     contributions have on power-law degree spreads is not screened away;
//   - trimmed HT discards the `trim_fraction` smallest and largest surviving
//     contributions before averaging;
//   - winsorized HT clamps them to the trim quantiles instead, keeping the
//     observation count (smaller honest-data bias than trimming on skewed
//     contributions).
//
// All three degrade to plain HT when their knobs are zero. None survives a
// colluding majority: with more than half the *observations* adversarial the
// median itself is captured, which is the documented known gap.
#ifndef P2PAQP_CORE_ROBUST_ESTIMATOR_H_
#define P2PAQP_CORE_ROBUST_ESTIMATOR_H_

#include <cstddef>
#include <vector>

#include "core/estimator.h"

namespace p2paqp::core {

enum class RobustEstimatorKind {
  kPlain = 0,   // Untrimmed mean (exactly estimator.h's HorvitzThompson).
  kTrimmed,     // Drop trim_fraction per tail.
  kWinsorized,  // Clamp to the trim quantiles per tail.
};

const char* RobustEstimatorKindToString(RobustEstimatorKind kind);

// Sink-side defense knobs, carried by EngineParams. All-default = plain HT
// with no audits: the engines take their original code paths bit-identically.
struct RobustnessPolicy {
  RobustEstimatorKind estimator = RobustEstimatorKind::kPlain;
  // Fraction trimmed/winsorized per tail, clamped so at least one
  // observation always survives (a 100% trim request degenerates to the
  // median, not to an empty sample).
  double trim_fraction = 0.0;
  // 0 = no screen; otherwise drop contributions with
  // |x - median| > mad_cutoff * 1.4826 * MAD (the normal-consistent scale).
  double mad_cutoff = 0.0;
  // Degree cross-validation: neighbor attestations sampled per audited peer
  // (0 = no audit). Each probe costs a kAuditProbe/kAuditReply round trip
  // and rides the installed FaultPlan like any other direct message.
  size_t degree_audit_probes = 0;
  // A peer is suspected when more than this fraction of its *delivered*
  // attestations deny the claimed adjacency. Probes lost in transit are
  // inconclusive and vote for neither side.
  double degree_audit_denial_threshold = 0.34;

  // True when any defense beyond plain HT is active.
  bool enabled() const {
    return estimator != RobustEstimatorKind::kPlain || trim_fraction > 0.0 ||
           mad_cutoff > 0.0 || degree_audit_probes > 0;
  }
};

struct RobustEstimate {
  double estimate = 0.0;
  // Variance of the robust mean (sample variance of the surviving, possibly
  // clamped contributions over their count).
  double variance = 0.0;
  // Observations contributing after screening/trimming.
  size_t used = 0;
  // Observations dropped by the MAD screen.
  size_t screened = 0;
  // Fraction of the observation set that was screened, trimmed, or clamped —
  // the robustness price, surfaced as audit telemetry and folded into the
  // degraded-answer CI widening.
  double trimmed_mass = 0.0;
};

// Robust counterpart of HorvitzThompson + HorvitzThompsonVariance: screens,
// then trims/winsorizes, the per-peer estimates value*total_weight/weight.
// With an all-default policy the result equals the plain estimator exactly.
// Requires at least one observation.
RobustEstimate RobustHorvitzThompson(
    const std::vector<WeightedObservation>& observations, double total_weight,
    const RobustnessPolicy& policy);

// --- Building blocks (exposed for tests and the median/distinct paths) ----

// Median of `values` (averaged middle pair for even sizes); 0 when empty.
double MedianOf(std::vector<double> values);

// Median absolute deviation around `center`; 0 when empty.
double MadAround(const std::vector<double>& values, double center);

// Indices of `values` surviving the double-MAD screen: each value's
// deviation from the median is compared against cutoff * 1.4826 * the MAD of
// its own side (below/above the median), so skewed-but-genuine tails pass.
// All indices pass when cutoff <= 0 or every scale degenerates to 0.
std::vector<size_t> MadScreenIndices(const std::vector<double>& values,
                                     double cutoff);

}  // namespace p2paqp::core

#endif  // P2PAQP_CORE_ROBUST_ESTIMATOR_H_

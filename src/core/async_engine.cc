#include "core/async_engine.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <utility>

#include "util/alloc_guard.h"
#include "util/bug_injection.h"

namespace p2paqp::core {

namespace {

// Mirrors two_phase.cc's total-aggregate normalizer (N for COUNT, the
// all-tuples sum for SUM) for the error normalization.
double EstimateTotal(const std::vector<PeerObservation>& observations,
                     query::AggregateOp op, double total_weight) {
  std::vector<WeightedObservation> totals;
  totals.reserve(observations.size());
  for (const PeerObservation& obs : observations) {
    double value = op == query::AggregateOp::kSum
                       ? obs.aggregate.total_sum_value
                       : static_cast<double>(obs.aggregate.local_tuples);
    totals.push_back({value, obs.stationary_weight});
  }
  return HorvitzThompson(totals, total_weight);
}

std::vector<WeightedObservation> ToWeighted(
    const std::vector<PeerObservation>& observations, query::AggregateOp op) {
  std::vector<WeightedObservation> weighted;
  weighted.reserve(observations.size());
  for (const PeerObservation& obs : observations) {
    weighted.push_back({obs.aggregate.ValueFor(op), obs.stationary_weight});
  }
  return weighted;
}

// One in-flight phase. Stack-local to RunPhase: every queued event resolves
// before RunPhase returns (the queue drains inside it), so events reference
// the runtime and the session buffers by raw pointer/handle — no shared_ptr
// webs, no per-event closure state beyond 16 bytes.
//
// Walker hops are *step events* (net::StepHandler): the queue stores just
// (this, walker_index) and hands every simultaneous pending hop to RunSteps
// in one batch, which iterates the SoA walker arrays with a two-deep
// software-prefetch pipeline over the compressed CSR. Replies park their
// payload in the session's SlotArena and schedule a 16-byte
// (runtime, handle) closure — the steady-state path performs no heap
// allocation (AllocGuard-measured by RunPhase, gated by tools/bench_gate.py).
class PhaseRuntime final : public net::StepHandler {
 public:
  PhaseRuntime(net::SimulatedNetwork* network, const AsyncParams& params,
               net::EventQueue& events, const query::AggregateQuery& query,
               graph::NodeId sink, size_t count, util::Rng& rng,
               net::HistoryRecorder* history, uint64_t dedup_round,
               AsyncHotBuffers& buffers,
               std::vector<PeerObservation>& observations)
      : network_(network),
        params_(params),
        events_(events),
        query_(query),
        sink_(sink),
        rng_(rng),
        history_(history),
        dedup_round_(dedup_round),
        buf_(buffers),
        observations_(observations),
        hops_left_(100 * (params.walk.burn_in * params.walkers +
                          count * params.walk.jump) +
                   1000),
        restarts_left_(sampling::AutoMaxRestarts(count)) {}

  // Launches up to `walkers` tokens with near-even selection shares.
  void Launch(size_t count) {
    size_t remaining = count;
    for (size_t w = 0; w < params_.walkers && remaining > 0; ++w) {
      size_t share = remaining / (params_.walkers - w);
      if (share == 0) continue;
      remaining -= share;
      buf_.walker_current.push_back(sink_);
      buf_.walker_burn_left.push_back(params_.walk.burn_in);
      buf_.walker_since_selection.push_back(0);
      buf_.walker_remaining.push_back(share);
      buf_.walker_incarnation.push_back(network_->peer(sink_).incarnation());
      ++active_walkers_;
      events_.ScheduleStepAfter(
          network_->DrawHopLatency(), this,
          static_cast<uint32_t>(buf_.walker_current.size() - 1));
    }
  }

  // Mid-query churn stop condition: walkers still holding a token plus
  // replies racing back to the sink.
  bool InFlight() const {
    return active_walkers_ > 0 || pending_replies_ > 0;
  }

  // Batched walker-step kernel. A walker has at most one pending hop, so
  // every arg in a batch is a distinct walker and the prefetched
  // walker_current entries are stable across the loop: pull walker i+2's
  // offset-table line and walker i+1's varint block while decoding walker
  // i's neighbors.
  void RunSteps(const uint32_t* args, size_t n) override {
    const graph::Graph& graph = network_->graph();
    for (size_t i = 0; i < n; ++i) {
      if (i + 2 < n) graph.PrefetchOffset(buf_.walker_current[args[i + 2]]);
      if (i + 1 < n) {
        graph.PrefetchNeighbors(buf_.walker_current[args[i + 1]]);
      }
      StepWalker(args[i]);
    }
  }

  size_t restarts = 0;
  size_t retransmits = 0;
  size_t selections = 0;
  size_t duplicates = 0;

 private:
  // One walker hop arriving at a new peer. Identical draws, costs, history
  // records and fault semantics as the closure-per-hop implementation this
  // replaced — only the state layout (SoA indexed by `w`) changed.
  void StepWalker(uint32_t w) {
    if (hops_left_ == 0) {
      // Hop budget exhausted: the token expires and its remaining
      // selections are lost (the quorum check decides the phase's fate).
      --active_walkers_;
      return;
    }
    --hops_left_;
    const graph::NodeId holder = buf_.walker_current[w];
    std::vector<graph::NodeId>& neighbors = buf_.neighbors;
    network_->AliveNeighborsInto(holder, &neighbors);
    // An adversarial token holder may forward only to colluding neighbors
    // (walk hijack); the uniform draw below then picks among colluders.
    if (net::AdversaryInjector* adversary = network_->adversary()) {
      adversary->RestrictForwarding(holder, &neighbors);
    }
    bool token_lost =
        !network_->IsAlive(holder) ||
        network_->peer(holder).incarnation() != buf_.walker_incarnation[w] ||
        neighbors.empty();
    if (!token_lost) {
      graph::NodeId next = neighbors[rng_.UniformIndex(neighbors.size())];
      util::Status sent =
          network_->SendAlongEdge(net::MessageType::kWalker, holder, next);
      if (sent.ok()) {
        // The synchronous ledger summed this hop's latency; the event clock
        // is authoritative here, so draw the event delay independently.
        buf_.walker_current[w] = next;
        buf_.walker_incarnation[w] = network_->peer(next).incarnation();
        if (buf_.walker_burn_left[w] > 0) {
          --buf_.walker_burn_left[w];
        } else if (++buf_.walker_since_selection[w] >= params_.walk.jump) {
          buf_.walker_since_selection[w] = 0;
          --buf_.walker_remaining[w];
          SelectPeer(next);
        }
        if (buf_.walker_remaining[w] > 0) {
          events_.ScheduleStepAfter(network_->DrawHopLatency(), this, w);
        } else {
          --active_walkers_;  // All selections gathered.
        }
        return;
      }
      // The hop was lost in transit (drop, or the chosen neighbor crashed
      // on receipt). A live holder with a live route still has the token:
      // link-level retransmit after a timeout.
      if (network_->IsAlive(holder) && network_->AliveDegree(holder) > 0) {
        events_.ScheduleStepAfter(network_->DrawHopLatency(), this, w);
        return;
      }
      token_lost = true;
    }
    // The token is gone: its holder crashed or stranded with no live
    // route. The sink re-issues it with a *fresh burn-in* — a token
    // restarted at the sink is no longer stationary-distributed.
    if (!network_->IsAlive(sink_) || network_->AliveDegree(sink_) == 0 ||
        restarts_left_ == 0) {
      --active_walkers_;  // Unrecoverable: selections lost.
      return;
    }
    --restarts_left_;
    ++restarts;
    buf_.walker_current[w] = sink_;
    buf_.walker_incarnation[w] = network_->peer(sink_).incarnation();
    buf_.walker_burn_left[w] = params_.walk.burn_in;
    buf_.walker_since_selection[w] = 0;
    events_.ScheduleStepAfter(network_->DrawHopLatency(), this, w);
  }

  // One selected peer: scan locally (scan-time delay), then the reply races
  // back to the sink over direct IP (half-hop delay, like SendDirect). A
  // reply lost to faults is retransmitted after a sink-side timeout (each
  // attempt adds its own wire delay); a crashed endpoint cannot retry and
  // the observation is lost.
  void SelectPeer(graph::NodeId peer) {
    query::LocalAggregate aggregate = query::ExecuteLocal(
        network_->peer(peer).database(), query_,
        query::SubSamplePolicy{.t = params_.engine.tuples_per_peer,
                               .mode = params_.engine.subsample_mode,
                               .block_size = params_.engine.block_size},
        rng_, &buf_.exec);
    network_->cost().RecordPeerVisit();
    network_->cost().RecordTuplesScanned(aggregate.processed_tuples);
    network_->cost().RecordTuplesSampled(aggregate.processed_tuples);
    double scan_ms =
        network_->LocalScanLatency(peer, aggregate.processed_tuples);
    PeerObservation obs;
    obs.peer = peer;
    obs.degree = network_->AliveDegree(peer);
    obs.stationary_weight = static_cast<double>(obs.degree);
    obs.aggregate = aggregate;
    obs.selection_seq = selections++;
    // Adversarial tampering happens at the sender: misreported degree,
    // corrupted aggregates, and possibly replayed duplicate copies.
    size_t replays = TamperObservation(network_->adversary(), &obs);
    double delay = scan_ms;
    bool delivered = false;
    for (size_t attempt = 0; attempt <= params_.engine.reply_retransmits;
         ++attempt) {
      if (attempt > 0) {
        ++retransmits;
        if (history_ != nullptr) {
          history_->Record(net::HistoryEventKind::kTimeout,
                           net::MessageType::kAggregateReply, peer, sink_);
          history_->Record(net::HistoryEventKind::kRetransmit,
                           net::MessageType::kAggregateReply, peer, sink_);
        }
      }
      if (SendReplyCopy(peer, &delay)) {
        delivered = true;
        break;
      }
      if (!network_->IsAlive(peer) || !network_->IsAlive(sink_)) break;
    }
    if (delivered) DeliverReply(obs, delay);
    // Replayed copies each cross the wire independently. A copy that
    // arrives after the original is deduped; if the original was lost, the
    // first surviving copy is accepted (indistinguishable from a
    // retransmit).
    for (size_t replay = 0; replay < replays; ++replay) {
      if (!network_->IsAlive(peer) || !network_->IsAlive(sink_)) break;
      double copy_delay = delay;
      if (!SendReplyCopy(peer, &copy_delay)) continue;
      DeliverReply(obs, copy_delay);
    }
  }

  // Charges one reply copy and resolves its fate in the ledger/history,
  // exactly like SimulatedNetwork's transport does for routed sends.
  bool SendReplyCopy(graph::NodeId peer, double* delay) {
    network_->cost().RecordMessage(
        net::DefaultPayloadBytes(net::MessageType::kAggregateReply));
    if (history_ != nullptr) {
      history_->Record(net::HistoryEventKind::kSend,
                       net::MessageType::kAggregateReply, peer, sink_);
    }
    net::FaultDecision faults = network_->ApplyFaults(
        net::MessageType::kAggregateReply, peer, sink_, peer);
    *delay += network_->DrawHopLatency() * 0.5 + faults.extra_latency_ms;
    bool ok = faults.deliver && network_->IsAlive(peer) &&
              network_->IsAlive(sink_);
    if (ok) {
      network_->cost().RecordDelivered();
    } else {
      network_->cost().RecordDropped();
    }
    if (history_ != nullptr) {
      history_->Record(ok ? net::HistoryEventKind::kDeliver
                          : net::HistoryEventKind::kDrop,
                       net::MessageType::kAggregateReply, peer, sink_);
    }
    return ok;
  }

  // One reply copy racing to the sink. The payload parks in the session's
  // arena; the queued closure is (this, handle) — 16 bytes, inline in the
  // event slot, no allocation.
  void DeliverReply(const PeerObservation& obs, double arrival_delay) {
    ++pending_replies_;
    net::ArenaHandle handle = buf_.reply_arena.Acquire();
    buf_.reply_arena.at(handle) = obs;
    PhaseRuntime* self = this;
    events_.ScheduleAfter(arrival_delay,
                          [self, handle]() { self->ReplyArrived(handle); });
  }

  // Sink-side arrival: dedup on selection_seq, so only the first copy of a
  // selection is ever counted.
  void ReplyArrived(net::ArenaHandle handle) {
    const PeerObservation reply = buf_.reply_arena.at(handle);
    buf_.reply_arena.Release(handle);
    --pending_replies_;
    const uint64_t tag =
        net::DedupTag(dedup_round_, reply.peer, reply.selection_seq);
    P2PAQP_DCHECK(reply.selection_seq < buf_.seen_seq.size());
    const bool duplicate = buf_.seen_seq[reply.selection_seq] != 0;
    buf_.seen_seq[reply.selection_seq] = 1;
    if (duplicate && !util::BugArmed(util::InjectedBug::kDisableReplyDedup)) {
      ++duplicates;  // Replayed copy: dropped at the sink.
      if (history_ != nullptr) {
        history_->Record(net::HistoryEventKind::kDedupDrop,
                         net::MessageType::kAggregateReply, reply.peer, sink_,
                         1, tag);
      }
      return;
    }
    observations_.push_back(reply);  // Reply reached the sink.
    if (history_ != nullptr) {
      history_->Record(net::HistoryEventKind::kDedupAccept,
                       net::MessageType::kAggregateReply, reply.peer, sink_,
                       1, tag);
    }
  }

  net::SimulatedNetwork* network_;
  const AsyncParams& params_;
  net::EventQueue& events_;
  const query::AggregateQuery& query_;
  const graph::NodeId sink_;
  util::Rng& rng_;
  net::HistoryRecorder* history_;
  const uint64_t dedup_round_;
  AsyncHotBuffers& buf_;
  std::vector<PeerObservation>& observations_;
  size_t hops_left_;      // Global hop budget across all walkers.
  size_t restarts_left_;  // Global token-restart budget.
  size_t active_walkers_ = 0;
  size_t pending_replies_ = 0;
};

}  // namespace

AsyncQuerySession::AsyncQuerySession(net::SimulatedNetwork* network,
                                     const SystemCatalog& catalog,
                                     const AsyncParams& params)
    : network_(network), catalog_(catalog), params_(params) {
  P2PAQP_CHECK(network_ != nullptr);
  P2PAQP_CHECK_GE(params_.walkers, 1u);
  P2PAQP_CHECK_GE(params_.walk.jump, 1u);
  P2PAQP_CHECK(params_.walk.variant == sampling::WalkVariant::kSimple)
      << "async session supports the simple walk only";
}

util::Result<std::vector<PeerObservation>> AsyncQuerySession::RunPhase(
    net::EventQueue& events, const query::AggregateQuery& query,
    graph::NodeId sink, size_t count, util::Rng& rng,
    TwoPhaseEngine::CollectionStats* stats, uint64_t* drain_allocs) {
  net::HistoryRecorder* history = network_->history();
  const uint64_t dedup_round = history != nullptr ? history->NextRound() : 0;

  // Pre-size everything the drain touches, so the event loop below — the
  // steady-state window AllocGuard measures — does not grow a buffer even
  // on a cold session. Observations stay a fresh per-phase vector (the
  // caller moves it out); selections never exceed `count`, so reserving
  // here keeps the arrival-side push_backs allocation-free.
  std::vector<PeerObservation> observations;
  observations.reserve(count);
  buffers_.seen_seq.assign(count, 0);
  buffers_.neighbors.reserve(network_->graph().max_degree());
  buffers_.walker_current.clear();
  buffers_.walker_burn_left.clear();
  buffers_.walker_since_selection.clear();
  buffers_.walker_remaining.clear();
  buffers_.walker_incarnation.clear();
  buffers_.walker_current.reserve(params_.walkers);
  buffers_.walker_burn_left.reserve(params_.walkers);
  buffers_.walker_since_selection.reserve(params_.walkers);
  buffers_.walker_remaining.reserve(params_.walkers);
  buffers_.walker_incarnation.reserve(params_.walkers);
  // Pending set: one hop event per walker plus the replies in flight (the
  // adversary's replayed copies can push past it; that growth is amortized
  // and absent from the gated fault-free configs).
  buffers_.reply_arena.Reserve(count + 16);
  events.Reserve(params_.walkers + count + 16);

  PhaseRuntime runtime(network_, params_, events, query, sink, count, rng,
                       history, dedup_round, buffers_, observations);
  runtime.Launch(count);

  // Mid-query churn rides the same event clock, stepping while the phase
  // still has in-flight work.
  if (params_.churn != nullptr && params_.churn_interval_ms > 0.0) {
    PhaseRuntime* rt = &runtime;
    params_.churn->RunOnEventQueue(events, network_, params_.churn_interval_ms,
                                   [rt]() { return rt->InFlight(); });
  }

  util::AllocGuard alloc_guard;
  events.RunUntilEmpty();
  if (drain_allocs != nullptr) *drain_allocs += alloc_guard.allocations();

  const size_t delivered = observations.size();
  const auto quorum = static_cast<size_t>(
      std::ceil(params_.engine.min_observation_quorum *
                static_cast<double>(count)));
  if (count > 0 && delivered < quorum &&
      !util::BugArmed(util::InjectedBug::kSkipQuorumCheck)) {
    return util::Status::Unavailable(
        "async observation quorum not met: " + std::to_string(delivered) +
        "/" + std::to_string(count) + " delivered");
  }
  if (stats != nullptr) {
    stats->requested = count;
    stats->delivered = delivered;
    stats->lost = count - delivered;
    stats->reply_retransmits = runtime.retransmits;
    stats->walk_restarts = runtime.restarts;
    stats->duplicate_replies = runtime.duplicates;
  }
  return std::move(observations);
}


util::Result<AsyncQueryReport> AsyncQuerySession::Execute(
    const query::AggregateQuery& query, graph::NodeId sink, util::Rng& rng) {
  if (query.op != query::AggregateOp::kCount &&
      query.op != query::AggregateOp::kSum) {
    return util::Status::InvalidArgument(
        "async session supports COUNT and SUM");
  }
  if (sink >= network_->num_peers() || !network_->IsAlive(sink)) {
    return util::Status::FailedPrecondition("sink peer is not live");
  }
  net::CostSnapshot before = network_->cost_snapshot();
  net::EventQueue events;
  uint64_t drain_allocs = 0;

  // ---- Phase I ----
  TwoPhaseEngine::CollectionStats phase1_stats;
  auto phase1 = RunPhase(events, query, sink, params_.engine.phase1_peers,
                         rng, &phase1_stats, &drain_allocs);
  if (!phase1.ok()) return phase1.status();
  if (phase1->size() < 2) {
    return util::Status::Unavailable(
        "phase I delivered too few observations to cross-validate");
  }
  double phase1_done = events.now();

  double total_weight = catalog_.total_degree_weight();
  CrossValidationResult cv = CrossValidate(ToWeighted(*phase1, query.op),
                                           total_weight,
                                           params_.engine.cv_repeats, rng);
  double estimated_total = EstimateTotal(*phase1, query.op, total_weight);
  if (estimated_total <= 0.0 ||
      params_.engine.normalization == ErrorNormalization::kQueryAnswer) {
    estimated_total = std::fabs(cv.estimate);
  }
  double cv_normalized =
      estimated_total == 0.0 ? 0.0 : cv.cv_error / estimated_total;
  // Sized from the observations that actually arrived (== phase1_peers on
  // the fault-free path): the cross-validation error was measured on those.
  size_t phase2_peers = PhaseTwoSampleSize(
      phase1->size(), cv_normalized, query.required_error,
      params_.engine.min_phase2_peers,
      params_.engine.max_phase2_peers == 0 ? network_->num_peers()
                                           : params_.engine.max_phase2_peers);

  // ---- Phase II ----
  TwoPhaseEngine::CollectionStats phase2_stats;
  auto phase2 = RunPhase(events, query, sink, phase2_peers, rng,
                         &phase2_stats, &drain_allocs);
  if (!phase2.ok()) return phase2.status();

  std::vector<PeerObservation> final_set;
  if (params_.engine.include_phase1_observations) {
    final_set = *phase1;
    final_set.insert(final_set.end(), phase2->begin(), phase2->end());
  } else {
    final_set = *phase2;
  }

  // Byzantine defenses, mirroring the synchronous engine.
  const RobustnessPolicy& policy = params_.engine.robustness;
  size_t suspected =
      AuditObservationDegrees(network_, policy, sink, &final_set, rng);
  if (final_set.empty()) {
    return util::Status::Unavailable(
        "degree audit rejected every observation");
  }
  auto weighted = ToWeighted(final_set, query.op);

  AsyncQueryReport report;
  report.answer.suspected_peers = suspected;
  if (policy.enabled()) {
    RobustEstimate robust =
        RobustHorvitzThompson(weighted, total_weight, policy);
    report.answer.estimate = robust.estimate;
    report.answer.variance = robust.variance;
    report.answer.trimmed_mass = robust.trimmed_mass;
  } else {
    report.answer.estimate = HorvitzThompson(weighted, total_weight);
    report.answer.variance = HorvitzThompsonVariance(weighted, total_weight);
  }
  // Degradation accounting mirrors the synchronous engine: reweight over
  // the survivors, widen the CI by the root of the loss ratio.
  report.answer.observations_lost = phase1_stats.lost + phase2_stats.lost;
  report.answer.walk_restarts =
      phase1_stats.walk_restarts + phase2_stats.walk_restarts;
  report.answer.duplicate_replies =
      phase1_stats.duplicate_replies + phase2_stats.duplicate_replies;
  report.answer.degraded = report.answer.observations_lost > 0 ||
                           suspected > 0 || report.answer.trimmed_mass > 0.0;
  double inflation = 1.0;
  if (report.answer.observations_lost > 0) {
    size_t requested = phase1_stats.requested + phase2_stats.requested;
    size_t arrived = phase1_stats.delivered + phase2_stats.delivered;
    inflation = std::sqrt(static_cast<double>(requested) /
                          static_cast<double>(std::max<size_t>(arrived, 1)));
  }
  double discarded = std::min(report.answer.trimmed_mass, 0.9);
  if (discarded > 0.0) inflation *= std::sqrt(1.0 / (1.0 - discarded));
  report.answer.ci_half_width_95 =
      1.959963984540054 * std::sqrt(report.answer.variance) * inflation;
  report.answer.estimated_total = estimated_total;
  report.answer.cv_error_relative = cv_normalized;
  double denom = estimated_total > 0.0 ? estimated_total
                                       : std::fabs(report.answer.estimate);
  report.answer.achieved_error =
      denom > 0.0 ? report.answer.ci_half_width_95 / denom : 0.0;
  report.answer.phase1_peers = phase1->size();
  report.answer.phase2_peers = phase2->size();
  report.answer.cost = net::CostDelta(network_->cost_snapshot(), before);
  report.answer.sample_tuples = report.answer.cost.tuples_sampled;
  // The event clock, not the sequential sum, is the real latency.
  report.answer.cost.latency_ms = events.now();
  report.makespan_ms = events.now();
  report.phase1_done_ms = phase1_done;
  report.events = events.executed();
  report.drain_allocs = drain_allocs;
  return report;
}

}  // namespace p2paqp::core

#include "core/async_engine.h"

#include <cmath>
#include <memory>

namespace p2paqp::core {

namespace {

// Mirrors two_phase.cc's total-aggregate normalizer (N for COUNT, the
// all-tuples sum for SUM) for the error normalization.
double EstimateTotal(const std::vector<PeerObservation>& observations,
                     query::AggregateOp op, double total_weight) {
  std::vector<WeightedObservation> totals;
  totals.reserve(observations.size());
  for (const PeerObservation& obs : observations) {
    double value = op == query::AggregateOp::kSum
                       ? obs.aggregate.total_sum_value
                       : static_cast<double>(obs.aggregate.local_tuples);
    totals.push_back({value, obs.stationary_weight});
  }
  return HorvitzThompson(totals, total_weight);
}

std::vector<WeightedObservation> ToWeighted(
    const std::vector<PeerObservation>& observations, query::AggregateOp op) {
  std::vector<WeightedObservation> weighted;
  weighted.reserve(observations.size());
  for (const PeerObservation& obs : observations) {
    weighted.push_back({obs.aggregate.ValueFor(op), obs.stationary_weight});
  }
  return weighted;
}

// All state one in-flight phase shares across its event callbacks.
struct PhaseState {
  std::vector<PeerObservation> observations;
  size_t expected = 0;
  size_t hops_left = 0;  // Global hop budget across all walkers.
  bool failed = false;
  std::string failure;
};

}  // namespace

AsyncQuerySession::AsyncQuerySession(net::SimulatedNetwork* network,
                                     const SystemCatalog& catalog,
                                     const AsyncParams& params)
    : network_(network), catalog_(catalog), params_(params) {
  P2PAQP_CHECK(network_ != nullptr);
  P2PAQP_CHECK_GE(params_.walkers, 1u);
  P2PAQP_CHECK_GE(params_.walk.jump, 1u);
  P2PAQP_CHECK(params_.walk.variant == sampling::WalkVariant::kSimple)
      << "async session supports the simple walk only";
}

util::Result<std::vector<PeerObservation>> AsyncQuerySession::RunPhase(
    net::EventQueue& events, const query::AggregateQuery& query,
    graph::NodeId sink, size_t count, util::Rng& rng) {
  auto state = std::make_shared<PhaseState>();
  state->expected = count;
  state->hops_left =
      100 * (params_.walk.burn_in * params_.walkers +
             count * params_.walk.jump) +
      1000;

  // One selected peer: scan locally (scan-time delay), then the reply races
  // back to the sink over direct IP (half-hop delay, like SendDirect).
  auto select_peer = [this, &events, &query, sink, state,
                      &rng](graph::NodeId peer) {
    auto aggregate = query::ExecuteLocal(
        network_->peer(peer).database(), query,
        query::SubSamplePolicy{.t = params_.engine.tuples_per_peer,
                               .mode = params_.engine.subsample_mode,
                               .block_size = params_.engine.block_size},
        rng);
    network_->cost().RecordPeerVisit();
    network_->cost().RecordTuplesScanned(aggregate.processed_tuples);
    network_->cost().RecordTuplesSampled(aggregate.processed_tuples);
    network_->cost().RecordMessage(
        net::DefaultPayloadBytes(net::MessageType::kAggregateReply));
    double scan_ms =
        network_->LocalScanLatency(peer, aggregate.processed_tuples);
    double reply_ms = network_->DrawHopLatency() * 0.5;
    PeerObservation obs;
    obs.peer = peer;
    obs.degree = network_->AliveDegree(peer);
    obs.stationary_weight = static_cast<double>(obs.degree);
    obs.aggregate = aggregate;
    events.ScheduleAfter(scan_ms + reply_ms, [state, obs]() {
      state->observations.push_back(obs);  // Reply reached the sink.
    });
  };

  // Walker loop: each invocation is one hop arriving at a new peer.
  struct Walker {
    graph::NodeId current;
    size_t burn_left;
    size_t since_selection = 0;
    size_t remaining;
  };
  auto hop = std::make_shared<std::function<void(std::shared_ptr<Walker>)>>();
  *hop = [this, &events, sink, state, &rng, select_peer,
          hop](std::shared_ptr<Walker> walker) {
    if (state->failed || walker->remaining == 0) return;
    if (state->hops_left == 0) {
      state->failed = true;
      state->failure = "walk exceeded hop budget";
      return;
    }
    --state->hops_left;
    std::vector<graph::NodeId> neighbors =
        network_->AliveNeighbors(walker->current);
    if (neighbors.empty()) {
      if (walker->current == sink || !network_->IsAlive(sink)) {
        state->failed = true;
        state->failure = "walker stranded with no live route";
        return;
      }
      walker->current = sink;  // The sink re-issues the walker.
      events.ScheduleAfter(network_->DrawHopLatency(),
                           [hop, walker]() { (*hop)(walker); });
      return;
    }
    graph::NodeId next = neighbors[rng.UniformIndex(neighbors.size())];
    util::Status sent = network_->SendAlongEdge(net::MessageType::kWalker,
                                                walker->current, next);
    if (!sent.ok()) {
      state->failed = true;
      state->failure = sent.ToString();
      return;
    }
    // The synchronous ledger summed this hop's latency; the event clock is
    // authoritative here, so draw the event delay independently.
    walker->current = next;
    if (walker->burn_left > 0) {
      --walker->burn_left;
    } else if (++walker->since_selection >= params_.walk.jump) {
      walker->since_selection = 0;
      --walker->remaining;
      select_peer(next);
    }
    if (walker->remaining > 0) {
      events.ScheduleAfter(network_->DrawHopLatency(),
                           [hop, walker]() { (*hop)(walker); });
    }
  };

  // Launch the walkers with near-even selection shares.
  size_t remaining = count;
  for (size_t w = 0; w < params_.walkers && remaining > 0; ++w) {
    size_t share = remaining / (params_.walkers - w);
    if (share == 0) continue;
    remaining -= share;
    auto walker = std::make_shared<Walker>(
        Walker{sink, params_.walk.burn_in, 0, share});
    events.ScheduleAfter(network_->DrawHopLatency(),
                         [hop, walker]() { (*hop)(walker); });
  }

  events.RunUntilEmpty();
  if (state->failed) return util::Status::Unavailable(state->failure);
  if (state->observations.size() != count) {
    return util::Status::Internal("async phase lost replies");
  }
  return std::move(state->observations);
}

util::Result<AsyncQueryReport> AsyncQuerySession::Execute(
    const query::AggregateQuery& query, graph::NodeId sink, util::Rng& rng) {
  if (query.op != query::AggregateOp::kCount &&
      query.op != query::AggregateOp::kSum) {
    return util::Status::InvalidArgument(
        "async session supports COUNT and SUM");
  }
  if (sink >= network_->num_peers() || !network_->IsAlive(sink)) {
    return util::Status::FailedPrecondition("sink peer is not live");
  }
  net::CostSnapshot before = network_->cost_snapshot();
  net::EventQueue events;

  // ---- Phase I ----
  auto phase1 = RunPhase(events, query, sink, params_.engine.phase1_peers,
                         rng);
  if (!phase1.ok()) return phase1.status();
  double phase1_done = events.now();

  double total_weight = catalog_.total_degree_weight();
  CrossValidationResult cv = CrossValidate(ToWeighted(*phase1, query.op),
                                           total_weight,
                                           params_.engine.cv_repeats, rng);
  double estimated_total = EstimateTotal(*phase1, query.op, total_weight);
  if (estimated_total <= 0.0 ||
      params_.engine.normalization == ErrorNormalization::kQueryAnswer) {
    estimated_total = std::fabs(cv.estimate);
  }
  double cv_normalized =
      estimated_total == 0.0 ? 0.0 : cv.cv_error / estimated_total;
  size_t phase2_peers = PhaseTwoSampleSize(
      params_.engine.phase1_peers, cv_normalized, query.required_error,
      params_.engine.min_phase2_peers,
      params_.engine.max_phase2_peers == 0 ? network_->num_peers()
                                           : params_.engine.max_phase2_peers);

  // ---- Phase II ----
  auto phase2 = RunPhase(events, query, sink, phase2_peers, rng);
  if (!phase2.ok()) return phase2.status();

  std::vector<PeerObservation> final_set;
  if (params_.engine.include_phase1_observations) {
    final_set = *phase1;
    final_set.insert(final_set.end(), phase2->begin(), phase2->end());
  } else {
    final_set = *phase2;
  }
  auto weighted = ToWeighted(final_set, query.op);

  AsyncQueryReport report;
  report.answer.estimate = HorvitzThompson(weighted, total_weight);
  report.answer.variance = HorvitzThompsonVariance(weighted, total_weight);
  report.answer.ci_half_width_95 =
      1.959963984540054 * std::sqrt(report.answer.variance);
  report.answer.estimated_total = estimated_total;
  report.answer.cv_error_relative = cv_normalized;
  report.answer.phase1_peers = phase1->size();
  report.answer.phase2_peers = phase2->size();
  report.answer.cost = net::CostDelta(network_->cost_snapshot(), before);
  report.answer.sample_tuples = report.answer.cost.tuples_sampled;
  // The event clock, not the sequential sum, is the real latency.
  report.answer.cost.latency_ms = events.now();
  report.makespan_ms = events.now();
  report.phase1_done_ms = phase1_done;
  report.events = events.executed();
  return report;
}

}  // namespace p2paqp::core

#include "core/async_engine.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <memory>
#include <set>
#include <string>
#include <utility>

#include "util/bug_injection.h"

namespace p2paqp::core {

namespace {

// Mirrors two_phase.cc's total-aggregate normalizer (N for COUNT, the
// all-tuples sum for SUM) for the error normalization.
double EstimateTotal(const std::vector<PeerObservation>& observations,
                     query::AggregateOp op, double total_weight) {
  std::vector<WeightedObservation> totals;
  totals.reserve(observations.size());
  for (const PeerObservation& obs : observations) {
    double value = op == query::AggregateOp::kSum
                       ? obs.aggregate.total_sum_value
                       : static_cast<double>(obs.aggregate.local_tuples);
    totals.push_back({value, obs.stationary_weight});
  }
  return HorvitzThompson(totals, total_weight);
}

std::vector<WeightedObservation> ToWeighted(
    const std::vector<PeerObservation>& observations, query::AggregateOp op) {
  std::vector<WeightedObservation> weighted;
  weighted.reserve(observations.size());
  for (const PeerObservation& obs : observations) {
    weighted.push_back({obs.aggregate.ValueFor(op), obs.stationary_weight});
  }
  return weighted;
}

// All state one in-flight phase shares across its event callbacks.
struct PhaseState {
  std::vector<PeerObservation> observations;
  size_t expected = 0;
  size_t hops_left = 0;      // Global hop budget across all walkers.
  size_t restarts_left = 0;  // Global token-restart budget.
  size_t restarts = 0;
  size_t retransmits = 0;
  // In-flight work, for the mid-query churn stop condition: walkers still
  // holding a token plus replies racing back to the sink.
  size_t active_walkers = 0;
  size_t pending_replies = 0;
  // Sink-side reply dedup: tags (peer, selection_seq) already counted this
  // phase. Replayed/duplicated copies of a counted reply collide here and
  // never reach the quorum logic.
  size_t selections = 0;
  size_t duplicates = 0;
  std::set<std::pair<graph::NodeId, size_t>> seen;
};

}  // namespace

AsyncQuerySession::AsyncQuerySession(net::SimulatedNetwork* network,
                                     const SystemCatalog& catalog,
                                     const AsyncParams& params)
    : network_(network), catalog_(catalog), params_(params) {
  P2PAQP_CHECK(network_ != nullptr);
  P2PAQP_CHECK_GE(params_.walkers, 1u);
  P2PAQP_CHECK_GE(params_.walk.jump, 1u);
  P2PAQP_CHECK(params_.walk.variant == sampling::WalkVariant::kSimple)
      << "async session supports the simple walk only";
}

util::Result<std::vector<PeerObservation>> AsyncQuerySession::RunPhase(
    net::EventQueue& events, const query::AggregateQuery& query,
    graph::NodeId sink, size_t count, util::Rng& rng,
    TwoPhaseEngine::CollectionStats* stats) {
  auto state = std::make_shared<PhaseState>();
  net::HistoryRecorder* history = network_->history();
  const uint64_t dedup_round = history != nullptr ? history->NextRound() : 0;
  state->expected = count;
  state->hops_left =
      100 * (params_.walk.burn_in * params_.walkers +
             count * params_.walk.jump) +
      1000;
  state->restarts_left = sampling::AutoMaxRestarts(count);

  // One selected peer: scan locally (scan-time delay), then the reply races
  // back to the sink over direct IP (half-hop delay, like SendDirect). A
  // reply lost to faults is retransmitted after a sink-side timeout (each
  // attempt adds its own wire delay); a crashed endpoint cannot retry and
  // the observation is lost.
  auto select_peer = [this, &events, &query, sink, state, &rng, history,
                      dedup_round](graph::NodeId peer) {
    auto aggregate = query::ExecuteLocal(
        network_->peer(peer).database(), query,
        query::SubSamplePolicy{.t = params_.engine.tuples_per_peer,
                               .mode = params_.engine.subsample_mode,
                               .block_size = params_.engine.block_size},
        rng);
    network_->cost().RecordPeerVisit();
    network_->cost().RecordTuplesScanned(aggregate.processed_tuples);
    network_->cost().RecordTuplesSampled(aggregate.processed_tuples);
    double scan_ms =
        network_->LocalScanLatency(peer, aggregate.processed_tuples);
    PeerObservation obs;
    obs.peer = peer;
    obs.degree = network_->AliveDegree(peer);
    obs.stationary_weight = static_cast<double>(obs.degree);
    obs.aggregate = aggregate;
    obs.selection_seq = state->selections++;
    // Adversarial tampering happens at the sender: misreported degree,
    // corrupted aggregates, and possibly replayed duplicate copies.
    size_t replays = TamperObservation(network_->adversary(), &obs);
    // One reply copy racing to the sink; the arrival event dedups on the
    // (peer, selection_seq) tag, so only the first copy is ever counted.
    auto deliver_reply = [&events, state, sink, history,
                          dedup_round](const PeerObservation& reply,
                                       double arrival_delay) {
      ++state->pending_replies;
      events.ScheduleAfter(arrival_delay, [state, reply, sink, history,
                                           dedup_round]() {
        --state->pending_replies;
        const uint64_t tag =
            net::DedupTag(dedup_round, reply.peer, reply.selection_seq);
        if (!state->seen.insert({reply.peer, reply.selection_seq}).second &&
            !util::BugArmed(util::InjectedBug::kDisableReplyDedup)) {
          ++state->duplicates;  // Replayed copy: dropped at the sink.
          if (history != nullptr) {
            history->Record(net::HistoryEventKind::kDedupDrop,
                            net::MessageType::kAggregateReply, reply.peer,
                            sink, 1, tag);
          }
          return;
        }
        state->observations.push_back(reply);  // Reply reached the sink.
        if (history != nullptr) {
          history->Record(net::HistoryEventKind::kDedupAccept,
                          net::MessageType::kAggregateReply, reply.peer, sink,
                          1, tag);
        }
      });
    };
    // Charges one reply copy and resolves its fate in the ledger/history,
    // exactly like SimulatedNetwork's transport does for routed sends.
    auto send_reply_copy = [this, peer, sink, history](double* delay) {
      network_->cost().RecordMessage(
          net::DefaultPayloadBytes(net::MessageType::kAggregateReply));
      if (history != nullptr) {
        history->Record(net::HistoryEventKind::kSend,
                        net::MessageType::kAggregateReply, peer, sink);
      }
      net::FaultDecision faults = network_->ApplyFaults(
          net::MessageType::kAggregateReply, peer, sink, peer);
      *delay += network_->DrawHopLatency() * 0.5 + faults.extra_latency_ms;
      bool ok = faults.deliver && network_->IsAlive(peer) &&
                network_->IsAlive(sink);
      if (ok) {
        network_->cost().RecordDelivered();
      } else {
        network_->cost().RecordDropped();
      }
      if (history != nullptr) {
        history->Record(ok ? net::HistoryEventKind::kDeliver
                           : net::HistoryEventKind::kDrop,
                        net::MessageType::kAggregateReply, peer, sink);
      }
      return ok;
    };
    double delay = scan_ms;
    bool delivered = false;
    for (size_t attempt = 0; attempt <= params_.engine.reply_retransmits;
         ++attempt) {
      if (attempt > 0) {
        ++state->retransmits;
        if (history != nullptr) {
          history->Record(net::HistoryEventKind::kTimeout,
                          net::MessageType::kAggregateReply, peer, sink);
          history->Record(net::HistoryEventKind::kRetransmit,
                          net::MessageType::kAggregateReply, peer, sink);
        }
      }
      if (send_reply_copy(&delay)) {
        delivered = true;
        break;
      }
      if (!network_->IsAlive(peer) || !network_->IsAlive(sink)) break;
    }
    if (delivered) deliver_reply(obs, delay);
    // Replayed copies each cross the wire independently. A copy that
    // arrives after the original is deduped; if the original was lost, the
    // first surviving copy is accepted (indistinguishable from a
    // retransmit).
    for (size_t replay = 0; replay < replays; ++replay) {
      if (!network_->IsAlive(peer) || !network_->IsAlive(sink)) break;
      double copy_delay = delay;
      if (!send_reply_copy(&copy_delay)) continue;
      deliver_reply(obs, copy_delay);
    }
  };

  // Walker loop: each invocation is one hop arriving at a new peer.
  struct Walker {
    graph::NodeId current;
    size_t burn_left;
    size_t since_selection = 0;
    size_t remaining;
    // Incarnation of `current` captured when it received the token. A
    // mismatch at hop time means the holder died and rejoined between
    // events: the token perished with the old session, and resuming it
    // through the reborn peer would walk a session that no longer exists.
    uint64_t holder_incarnation = 0;
  };
  using HopFn = std::function<void(std::shared_ptr<Walker>)>;
  auto hop = std::make_shared<HopFn>();
  // The closure holds only a weak self-reference; the strong references
  // live in the queued events, so the chain frees once the queue drains.
  std::weak_ptr<HopFn> weak_hop = hop;
  *hop = [this, &events, sink, state, &rng, select_peer,
          weak_hop](std::shared_ptr<Walker> walker) {
    auto reschedule = [&events, weak_hop](std::shared_ptr<Walker> w,
                                          double delay) {
      if (auto strong = weak_hop.lock()) {
        events.ScheduleAfter(delay, [strong, w]() { (*strong)(w); });
      }
    };
    if (state->hops_left == 0) {
      // Hop budget exhausted: the token expires and its remaining
      // selections are lost (the quorum check decides the phase's fate).
      --state->active_walkers;
      return;
    }
    --state->hops_left;
    std::vector<graph::NodeId> neighbors =
        network_->AliveNeighbors(walker->current);
    // An adversarial token holder may forward only to colluding neighbors
    // (walk hijack); the uniform draw below then picks among colluders.
    if (net::AdversaryInjector* adversary = network_->adversary()) {
      adversary->RestrictForwarding(walker->current, &neighbors);
    }
    bool token_lost =
        !network_->IsAlive(walker->current) ||
        network_->peer(walker->current).incarnation() !=
            walker->holder_incarnation ||
        neighbors.empty();
    if (!token_lost) {
      graph::NodeId next = neighbors[rng.UniformIndex(neighbors.size())];
      util::Status sent = network_->SendAlongEdge(net::MessageType::kWalker,
                                                  walker->current, next);
      if (sent.ok()) {
        // The synchronous ledger summed this hop's latency; the event clock
        // is authoritative here, so draw the event delay independently.
        walker->current = next;
        walker->holder_incarnation = network_->peer(next).incarnation();
        if (walker->burn_left > 0) {
          --walker->burn_left;
        } else if (++walker->since_selection >= params_.walk.jump) {
          walker->since_selection = 0;
          --walker->remaining;
          select_peer(next);
        }
        if (walker->remaining > 0) {
          reschedule(walker, network_->DrawHopLatency());
        } else {
          --state->active_walkers;  // All selections gathered.
        }
        return;
      }
      // The hop was lost in transit (drop, or the chosen neighbor crashed
      // on receipt). A live holder with a live route still has the token:
      // link-level retransmit after a timeout.
      if (network_->IsAlive(walker->current) &&
          network_->AliveDegree(walker->current) > 0) {
        reschedule(walker, network_->DrawHopLatency());
        return;
      }
      token_lost = true;
    }
    // The token is gone: its holder crashed or stranded with no live
    // route. The sink re-issues it with a *fresh burn-in* — a token
    // restarted at the sink is no longer stationary-distributed.
    if (!network_->IsAlive(sink) || network_->AliveDegree(sink) == 0 ||
        state->restarts_left == 0) {
      --state->active_walkers;  // Unrecoverable: selections lost.
      return;
    }
    --state->restarts_left;
    ++state->restarts;
    walker->current = sink;
    walker->holder_incarnation = network_->peer(sink).incarnation();
    walker->burn_left = params_.walk.burn_in;
    walker->since_selection = 0;
    reschedule(walker, network_->DrawHopLatency());
  };

  // Launch the walkers with near-even selection shares.
  size_t remaining = count;
  for (size_t w = 0; w < params_.walkers && remaining > 0; ++w) {
    size_t share = remaining / (params_.walkers - w);
    if (share == 0) continue;
    remaining -= share;
    auto walker = std::make_shared<Walker>(
        Walker{sink, params_.walk.burn_in, 0, share,
               network_->peer(sink).incarnation()});
    ++state->active_walkers;
    events.ScheduleAfter(network_->DrawHopLatency(),
                         [hop, walker]() { (*hop)(walker); });
  }

  // Mid-query churn rides the same event clock, stepping while the phase
  // still has in-flight work.
  if (params_.churn != nullptr && params_.churn_interval_ms > 0.0) {
    params_.churn->RunOnEventQueue(
        events, network_, params_.churn_interval_ms, [state]() {
          return state->active_walkers > 0 || state->pending_replies > 0;
        });
  }

  events.RunUntilEmpty();
  const size_t delivered = state->observations.size();
  const auto quorum = static_cast<size_t>(
      std::ceil(params_.engine.min_observation_quorum *
                static_cast<double>(count)));
  if (count > 0 && delivered < quorum &&
      !util::BugArmed(util::InjectedBug::kSkipQuorumCheck)) {
    return util::Status::Unavailable(
        "async observation quorum not met: " + std::to_string(delivered) +
        "/" + std::to_string(count) + " delivered");
  }
  if (stats != nullptr) {
    stats->requested = count;
    stats->delivered = delivered;
    stats->lost = count - delivered;
    stats->reply_retransmits = state->retransmits;
    stats->walk_restarts = state->restarts;
    stats->duplicate_replies = state->duplicates;
  }
  return std::move(state->observations);
}

util::Result<AsyncQueryReport> AsyncQuerySession::Execute(
    const query::AggregateQuery& query, graph::NodeId sink, util::Rng& rng) {
  if (query.op != query::AggregateOp::kCount &&
      query.op != query::AggregateOp::kSum) {
    return util::Status::InvalidArgument(
        "async session supports COUNT and SUM");
  }
  if (sink >= network_->num_peers() || !network_->IsAlive(sink)) {
    return util::Status::FailedPrecondition("sink peer is not live");
  }
  net::CostSnapshot before = network_->cost_snapshot();
  net::EventQueue events;

  // ---- Phase I ----
  TwoPhaseEngine::CollectionStats phase1_stats;
  auto phase1 = RunPhase(events, query, sink, params_.engine.phase1_peers,
                         rng, &phase1_stats);
  if (!phase1.ok()) return phase1.status();
  if (phase1->size() < 2) {
    return util::Status::Unavailable(
        "phase I delivered too few observations to cross-validate");
  }
  double phase1_done = events.now();

  double total_weight = catalog_.total_degree_weight();
  CrossValidationResult cv = CrossValidate(ToWeighted(*phase1, query.op),
                                           total_weight,
                                           params_.engine.cv_repeats, rng);
  double estimated_total = EstimateTotal(*phase1, query.op, total_weight);
  if (estimated_total <= 0.0 ||
      params_.engine.normalization == ErrorNormalization::kQueryAnswer) {
    estimated_total = std::fabs(cv.estimate);
  }
  double cv_normalized =
      estimated_total == 0.0 ? 0.0 : cv.cv_error / estimated_total;
  // Sized from the observations that actually arrived (== phase1_peers on
  // the fault-free path): the cross-validation error was measured on those.
  size_t phase2_peers = PhaseTwoSampleSize(
      phase1->size(), cv_normalized, query.required_error,
      params_.engine.min_phase2_peers,
      params_.engine.max_phase2_peers == 0 ? network_->num_peers()
                                           : params_.engine.max_phase2_peers);

  // ---- Phase II ----
  TwoPhaseEngine::CollectionStats phase2_stats;
  auto phase2 = RunPhase(events, query, sink, phase2_peers, rng,
                         &phase2_stats);
  if (!phase2.ok()) return phase2.status();

  std::vector<PeerObservation> final_set;
  if (params_.engine.include_phase1_observations) {
    final_set = *phase1;
    final_set.insert(final_set.end(), phase2->begin(), phase2->end());
  } else {
    final_set = *phase2;
  }

  // Byzantine defenses, mirroring the synchronous engine.
  const RobustnessPolicy& policy = params_.engine.robustness;
  size_t suspected =
      AuditObservationDegrees(network_, policy, sink, &final_set, rng);
  if (final_set.empty()) {
    return util::Status::Unavailable(
        "degree audit rejected every observation");
  }
  auto weighted = ToWeighted(final_set, query.op);

  AsyncQueryReport report;
  report.answer.suspected_peers = suspected;
  if (policy.enabled()) {
    RobustEstimate robust =
        RobustHorvitzThompson(weighted, total_weight, policy);
    report.answer.estimate = robust.estimate;
    report.answer.variance = robust.variance;
    report.answer.trimmed_mass = robust.trimmed_mass;
  } else {
    report.answer.estimate = HorvitzThompson(weighted, total_weight);
    report.answer.variance = HorvitzThompsonVariance(weighted, total_weight);
  }
  // Degradation accounting mirrors the synchronous engine: reweight over
  // the survivors, widen the CI by the root of the loss ratio.
  report.answer.observations_lost = phase1_stats.lost + phase2_stats.lost;
  report.answer.walk_restarts =
      phase1_stats.walk_restarts + phase2_stats.walk_restarts;
  report.answer.duplicate_replies =
      phase1_stats.duplicate_replies + phase2_stats.duplicate_replies;
  report.answer.degraded = report.answer.observations_lost > 0 ||
                           suspected > 0 || report.answer.trimmed_mass > 0.0;
  double inflation = 1.0;
  if (report.answer.observations_lost > 0) {
    size_t requested = phase1_stats.requested + phase2_stats.requested;
    size_t arrived = phase1_stats.delivered + phase2_stats.delivered;
    inflation = std::sqrt(static_cast<double>(requested) /
                          static_cast<double>(std::max<size_t>(arrived, 1)));
  }
  double discarded = std::min(report.answer.trimmed_mass, 0.9);
  if (discarded > 0.0) inflation *= std::sqrt(1.0 / (1.0 - discarded));
  report.answer.ci_half_width_95 =
      1.959963984540054 * std::sqrt(report.answer.variance) * inflation;
  report.answer.estimated_total = estimated_total;
  report.answer.cv_error_relative = cv_normalized;
  double denom = estimated_total > 0.0 ? estimated_total
                                       : std::fabs(report.answer.estimate);
  report.answer.achieved_error =
      denom > 0.0 ? report.answer.ci_half_width_95 / denom : 0.0;
  report.answer.phase1_peers = phase1->size();
  report.answer.phase2_peers = phase2->size();
  report.answer.cost = net::CostDelta(network_->cost_snapshot(), before);
  report.answer.sample_tuples = report.answer.cost.tuples_sampled;
  // The event clock, not the sequential sum, is the real latency.
  report.answer.cost.latency_ms = events.now();
  report.makespan_ms = events.now();
  report.phase1_done_ms = phase1_done;
  report.events = events.executed();
  return report;
}

}  // namespace p2paqp::core

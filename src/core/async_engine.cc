#include "core/async_engine.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <utility>

#include "util/alloc_guard.h"
#include "util/bug_injection.h"

namespace p2paqp::core {

namespace {

// Mirrors two_phase.cc's total-aggregate normalizer (N for COUNT, the
// all-tuples sum for SUM) for the error normalization.
double EstimateTotal(const std::vector<PeerObservation>& observations,
                     query::AggregateOp op, double total_weight) {
  std::vector<WeightedObservation> totals;
  totals.reserve(observations.size());
  for (const PeerObservation& obs : observations) {
    double value = op == query::AggregateOp::kSum
                       ? obs.aggregate.total_sum_value
                       : static_cast<double>(obs.aggregate.local_tuples);
    totals.push_back({value, obs.stationary_weight});
  }
  return HorvitzThompson(totals, total_weight);
}

std::vector<WeightedObservation> ToWeighted(
    const std::vector<PeerObservation>& observations, query::AggregateOp op) {
  std::vector<WeightedObservation> weighted;
  weighted.reserve(observations.size());
  for (const PeerObservation& obs : observations) {
    weighted.push_back({obs.aggregate.ValueFor(op), obs.stationary_weight});
  }
  return weighted;
}

// One in-flight phase. Stack-local to RunPhase: every queued event resolves
// before RunPhase returns (the queue drains inside it), so events reference
// the runtime and the session buffers by raw pointer/handle — no shared_ptr
// webs, no per-event closure state beyond 16 bytes.
//
// Walker hops are *step events* (net::StepHandler): the queue stores just
// (this, walker_index) and hands every simultaneous pending hop to RunSteps
// in one batch, which iterates the SoA walker arrays with a two-deep
// software-prefetch pipeline over the compressed CSR. Replies park their
// payload in the session's SlotArena and schedule a 16-byte
// (runtime, handle) closure — the steady-state path performs no heap
// allocation (AllocGuard-measured by RunPhase, gated by tools/bench_gate.py).
class PhaseRuntime final : public net::StepHandler {
 public:
  PhaseRuntime(net::SimulatedNetwork* network, const AsyncParams& params,
               net::EventQueue& events, const query::AggregateQuery& query,
               graph::NodeId sink, size_t count, util::Rng& rng,
               net::HistoryRecorder* history, uint64_t dedup_round,
               AsyncHotBuffers& buffers,
               std::vector<PeerObservation>& observations, double deadline_ms,
               size_t* retry_budget)
      : network_(network),
        params_(params),
        events_(events),
        query_(query),
        sink_(sink),
        rng_(rng),
        history_(history),
        dedup_round_(dedup_round),
        buf_(buffers),
        observations_(observations),
        deadline_(deadline_ms),
        retry_budget_(retry_budget),
        hops_left_(100 * (params.walk.burn_in * params.walkers +
                          count * params.walk.jump) +
                   1000),
        restarts_left_(sampling::AutoMaxRestarts(count)) {}

  // Launches up to `walkers` tokens with near-even selection shares.
  void Launch(size_t count) {
    size_t remaining = count;
    for (size_t w = 0; w < params_.walkers && remaining > 0; ++w) {
      size_t share = remaining / (params_.walkers - w);
      if (share == 0) continue;
      remaining -= share;
      buf_.walker_current.push_back(sink_);
      buf_.walker_burn_left.push_back(params_.walk.burn_in);
      buf_.walker_since_selection.push_back(0);
      buf_.walker_remaining.push_back(share);
      buf_.walker_incarnation.push_back(network_->peer(sink_).incarnation());
      ++active_walkers_;
      events_.ScheduleStepAfter(
          network_->DrawHopLatency(), this,
          static_cast<uint32_t>(buf_.walker_current.size() - 1));
    }
  }

  // Mid-query churn stop condition: walkers still holding a token plus
  // replies racing back to the sink.
  bool InFlight() const {
    return active_walkers_ > 0 || pending_replies_ > 0;
  }

  // Batched walker-step kernel. A walker has at most one pending hop, so
  // every arg in a batch is a distinct walker and the prefetched
  // walker_current entries are stable across the loop: pull walker i+2's
  // offset-table line and walker i+1's varint block while decoding walker
  // i's neighbors.
  void RunSteps(const uint32_t* args, size_t n) override {
    const graph::Graph& graph = network_->graph();
    for (size_t i = 0; i < n; ++i) {
      if (i + 2 < n) graph.PrefetchOffset(buf_.walker_current[args[i + 2]]);
      if (i + 1 < n) {
        graph.PrefetchNeighbors(buf_.walker_current[args[i + 1]]);
      }
      StepWalker(args[i]);
    }
  }

  size_t restarts = 0;
  size_t retransmits = 0;
  size_t selections = 0;
  size_t duplicates = 0;
  size_t hedges = 0;
  size_t straggler_skips = 0;
  // Latches once the event clock reaches the query deadline: walker steps
  // stop scheduling new work and later-than-deadline replies are discarded,
  // so the queue drains naturally instead of being truncated (the ledger
  // and the reply arena still balance).
  bool deadline_hit = false;
  // When the sink last learned something it needed: the latest accepted
  // reply or final walker termination. The queue keeps draining past this
  // instant (losing hedge copies, deduped replays), but that drain is
  // bookkeeping, not waiting — the phase's wall clock stops here.
  double done_ms = 0.0;

 private:
  // One walker hop arriving at a new peer. On the straggler-free default
  // policy: identical draws, costs, history records and fault semantics as
  // the closure-per-hop implementation this replaced — only the state
  // layout (SoA indexed by `w`) changed. DrawPeerTailDelay consumes no
  // draws without a tail regime, so legacy replay digests are untouched.
  void StepWalker(uint32_t w) {
    if (events_.now() >= deadline_) {
      // Anytime semantics: no new walker work at or past the deadline.
      // In-flight replies drain on their own (and are dropped on arrival).
      deadline_hit = true;
      WalkerDone();
      return;
    }
    if (hops_left_ == 0) {
      // Hop budget exhausted: the token expires and its remaining
      // selections are lost (the quorum check decides the phase's fate).
      WalkerDone();
      return;
    }
    --hops_left_;
    const graph::NodeId holder = buf_.walker_current[w];
    std::vector<graph::NodeId>& neighbors = buf_.neighbors;
    network_->AliveNeighborsInto(holder, &neighbors);
    // An adversarial token holder may forward only to colluding neighbors
    // (walk hijack); the uniform draw below then picks among colluders.
    if (net::AdversaryInjector* adversary = network_->adversary()) {
      adversary->RestrictForwarding(holder, &neighbors);
    }
    bool token_lost =
        !network_->IsAlive(holder) ||
        network_->peer(holder).incarnation() != buf_.walker_incarnation[w] ||
        neighbors.empty();
    if (!token_lost) {
      const net::StragglerPolicy& sp = params_.engine.straggler;
      graph::NodeId next = neighbors[rng_.UniformIndex(neighbors.size())];
      const bool selection_due =
          buf_.walker_burn_left[w] == 0 &&
          buf_.walker_since_selection[w] + 1 >= params_.walk.jump;
      // Circuit breaker: a tripped neighbor is not worth sending the token
      // to — fork immediately, for free. Selection-due hops are exempt (the
      // tripped peer's probability of being *selected* must stay exactly
      // proportional to its degree), as are hops with no untripped
      // alternative (a walk boxed in by bad peers must still make progress).
      if (sp.health_tracking && !selection_due && neighbors.size() > 1 &&
          buf_.health.Tripped(next) &&
          HasUntrippedAlternative(neighbors, next)) {
        ForkPastStraggler(w, holder, next, /*token_sent=*/false,
                          /*transit_ms=*/0.0, /*wait_ms=*/0.0,
                          /*selection_due=*/false);
        return;
      }
      if (sp.walk_not_wait) {
        // Walk-Not-Wait: draw the hop's full transit (wire delay plus the
        // neighbor's straggler tail) up front. Past the adaptive budget the
        // token is still sent — on a selection-due hop the tardy peer is
        // selected *in absentia*, preserving selection probabilities — but
        // the walk refuses to wait: it forks from the holder once the
        // budget elapses.
        const double tail_ms = network_->DrawPeerTailDelay(next, rng_);
        const double transit = network_->DrawHopLatency() + tail_ms;
        const double budget = HopBudgetMs();
        ObserveHop(transit);
        if (transit > budget && neighbors.size() > 1) {
          ForkPastStraggler(w, holder, next, /*token_sent=*/true, transit,
                            /*wait_ms=*/budget, selection_due);
          return;
        }
        util::Status sent =
            network_->SendAlongEdge(net::MessageType::kWalker, holder, next);
        if (sent.ok()) {
          if (sp.health_tracking) buf_.health.Record(next, transit, true);
          AdvanceWalker(w, next, tail_ms);
          if (buf_.walker_remaining[w] > 0) {
            events_.ScheduleStepAfter(transit, this, w);
          } else {
            WalkerDone();  // All selections gathered.
          }
          return;
        }
        if (sp.health_tracking) buf_.health.Record(next, 0.0, false);
        if (network_->IsAlive(holder) && network_->AliveDegree(holder) > 0) {
          events_.ScheduleStepAfter(network_->DrawHopLatency(), this, w);
          return;
        }
        token_lost = true;
      } else {
        util::Status sent =
            network_->SendAlongEdge(net::MessageType::kWalker, holder, next);
        if (sent.ok()) {
          // The synchronous ledger summed this hop's latency; the event
          // clock is authoritative here, so draw the event delay
          // independently. The neighbor's straggler tail (0 draws without a
          // tail regime) delays both its reply and the next hop.
          const double tail_ms = network_->DrawPeerTailDelay(next, rng_);
          AdvanceWalker(w, next, tail_ms);
          if (buf_.walker_remaining[w] > 0) {
            const double transit = network_->DrawHopLatency() + tail_ms;
            if (sp.health_tracking) {
              buf_.health.Record(next, transit, true);
              ObserveHop(transit);
            }
            events_.ScheduleStepAfter(transit, this, w);
          } else {
            WalkerDone();  // All selections gathered.
          }
          return;
        }
        if (sp.health_tracking) buf_.health.Record(next, 0.0, false);
        // The hop was lost in transit (drop, or the chosen neighbor crashed
        // on receipt). A live holder with a live route still has the token:
        // link-level retransmit after a timeout.
        if (network_->IsAlive(holder) && network_->AliveDegree(holder) > 0) {
          events_.ScheduleStepAfter(network_->DrawHopLatency(), this, w);
          return;
        }
        token_lost = true;
      }
    }
    // The token is gone: its holder crashed or stranded with no live
    // route. The sink re-issues it with a *fresh burn-in* — a token
    // restarted at the sink is no longer stationary-distributed.
    if (!network_->IsAlive(sink_) || network_->AliveDegree(sink_) == 0 ||
        restarts_left_ == 0) {
      WalkerDone();  // Unrecoverable: selections lost.
      return;
    }
    --restarts_left_;
    ++restarts;
    buf_.walker_current[w] = sink_;
    buf_.walker_incarnation[w] = network_->peer(sink_).incarnation();
    buf_.walker_burn_left[w] = params_.walk.burn_in;
    buf_.walker_since_selection[w] = 0;
    events_.ScheduleStepAfter(network_->DrawHopLatency(), this, w);
  }

  // Successful hop bookkeeping shared by the legacy and Walk-Not-Wait
  // branches: advance the token, consume burn-in, select when due.
  // `reply_extra_ms` folds the token's tardy inbound transit into the
  // reply's departure (a slow peer cannot scan before the token arrives).
  void AdvanceWalker(uint32_t w, graph::NodeId next, double reply_extra_ms) {
    buf_.walker_current[w] = next;
    buf_.walker_incarnation[w] = network_->peer(next).incarnation();
    if (buf_.walker_burn_left[w] > 0) {
      --buf_.walker_burn_left[w];
    } else if (++buf_.walker_since_selection[w] >= params_.walk.jump) {
      buf_.walker_since_selection[w] = 0;
      --buf_.walker_remaining[w];
      SelectPeer(next, reply_extra_ms);
    }
  }

  // Walk-Not-Wait fork: give up on a tardy (token_sent) or breaker-tripped
  // (!token_sent) neighbor. With token_sent the token genuinely goes out —
  // charged like any hop, and when the hop was selection-due the tardy peer
  // is selected *in absentia* (its scan and reply proceed with the tardy
  // transit folded in), so selection probabilities are exactly those of the
  // unforked walk. The walk itself treats the fork as a *lazy self-loop*:
  // the walker stays at the holder, waits out `wait_ms`, and redraws — no
  // burn-in reset, no counter reset. Self-loops preserve detailed balance
  // for the degree-stationary distribution, so forking never conditions
  // the trajectory on having avoided slow peers (a re-burn-in here would:
  // the restarted chain mixes under the forked kernel and warps the holder
  // distribution toward slow-free neighborhoods). Breaker skips send
  // nothing and wait for nothing; they only fire on non-selection-due hops.
  void ForkPastStraggler(uint32_t w, graph::NodeId holder, graph::NodeId next,
                         bool token_sent, double transit_ms, double wait_ms,
                         bool selection_due) {
    ++straggler_skips;
    if (history_ != nullptr) {
      history_->Record(net::HistoryEventKind::kStragglerSkip,
                       net::MessageType::kWalker, holder, next);
    }
    if (token_sent) {
      util::Status sent =
          network_->SendAlongEdge(net::MessageType::kWalker, holder, next);
      if (params_.engine.straggler.health_tracking) {
        buf_.health.Record(next, transit_ms, sent.ok());
      }
      if (sent.ok() && selection_due) {
        buf_.walker_since_selection[w] = 0;
        --buf_.walker_remaining[w];
        SelectPeer(next, transit_ms);
      }
    }
    if (buf_.walker_remaining[w] == 0) {
      WalkerDone();
      return;
    }
    events_.ScheduleStepAfter(wait_ms, this, w);
  }

  bool HasUntrippedAlternative(const std::vector<graph::NodeId>& neighbors,
                               graph::NodeId skip) const {
    for (graph::NodeId n : neighbors) {
      if (n != skip && !buf_.health.Tripped(n)) return true;
    }
    return false;
  }

  // One walker token retired (selections gathered, expired, or lost). The
  // last termination stamps the phase clock: a token that died with
  // selections outstanding is the moment the sink's walk gave up on them.
  void WalkerDone() {
    if (--active_walkers_ == 0 && events_.now() > done_ms) {
      done_ms = events_.now();
    }
  }

  // Spends one unit of the query-scoped retry/hedge budget; false when
  // exhausted (SIZE_MAX = unlimited, the no-policy default).
  bool ConsumeRetry() {
    if (*retry_budget_ == 0) return false;
    if (*retry_budget_ != SIZE_MAX) --*retry_budget_;
    return true;
  }

  // Adaptive Walk-Not-Wait hop budget: a multiple of the EWMA hop transit,
  // floored so a quiet network cannot shrink it below ~2 nominal hops.
  // Infinite until a few hops have been observed (never fork blind).
  double HopBudgetMs() const {
    if (hop_samples_ < 3) return std::numeric_limits<double>::infinity();
    const net::StragglerPolicy& sp = params_.engine.straggler;
    double budget = sp.hop_budget_factor * hop_ewma_;
    double floor = sp.hop_budget_floor_ms > 0.0
                       ? sp.hop_budget_floor_ms
                       : 2.0 * network_->NominalHopLatencyMs();
    return budget < floor ? floor : budget;
  }

  // Sink-side hedge timer: a reply slower than this multiple of the EWMA
  // reply latency gets one duplicate. Infinite until warmed up.
  double HedgeDueMs() const {
    if (reply_samples_ < 3) return std::numeric_limits<double>::infinity();
    const net::StragglerPolicy& sp = params_.engine.straggler;
    double due = sp.hedge_delay_factor * reply_ewma_;
    double floor = network_->NominalHopLatencyMs();
    return due < floor ? floor : due;
  }

  // Winsorized EWMAs feeding the adaptive budgets: a single straggler
  // observation must not drag the budget up to straggler scale, so samples
  // are clamped to 8x the running mean before folding in.
  void ObserveHop(double transit_ms) {
    const double alpha = params_.engine.straggler.ewma_alpha;
    double clamped = hop_samples_ > 0 && transit_ms > 8.0 * hop_ewma_
                         ? 8.0 * hop_ewma_
                         : transit_ms;
    hop_ewma_ = hop_samples_ == 0 ? clamped
                                  : (1.0 - alpha) * hop_ewma_ + alpha * clamped;
    ++hop_samples_;
  }

  void ObserveReply(double delay_ms) {
    const double alpha = params_.engine.straggler.ewma_alpha;
    double clamped = reply_samples_ > 0 && delay_ms > 8.0 * reply_ewma_
                         ? 8.0 * reply_ewma_
                         : delay_ms;
    reply_ewma_ = reply_samples_ == 0
                      ? clamped
                      : (1.0 - alpha) * reply_ewma_ + alpha * clamped;
    ++reply_samples_;
  }

  // One selected peer: scan locally (scan-time delay), then the reply races
  // back to the sink over direct IP (half-hop delay, like SendDirect). A
  // reply lost to faults is retransmitted after a sink-side timeout (each
  // attempt adds its own wire delay, plus the policy's backoff wait when
  // one is configured); a crashed endpoint cannot retry and the observation
  // is lost. `extra_reply_delay_ms` is the tardy inbound token transit: the
  // peer cannot scan before the token reaches it.
  void SelectPeer(graph::NodeId peer, double extra_reply_delay_ms = 0.0) {
    query::LocalAggregate aggregate = query::ExecuteLocal(
        network_->peer(peer).database(), query_,
        query::SubSamplePolicy{.t = params_.engine.tuples_per_peer,
                               .mode = params_.engine.subsample_mode,
                               .block_size = params_.engine.block_size},
        rng_, &buf_.exec);
    network_->cost().RecordPeerVisit();
    network_->cost().RecordTuplesScanned(aggregate.processed_tuples);
    network_->cost().RecordTuplesSampled(aggregate.processed_tuples);
    double scan_ms =
        network_->LocalScanLatency(peer, aggregate.processed_tuples);
    PeerObservation obs;
    obs.peer = peer;
    obs.degree = network_->AliveDegree(peer);
    obs.stationary_weight = static_cast<double>(obs.degree);
    obs.aggregate = aggregate;
    obs.selection_seq = selections++;
    // Adversarial tampering happens at the sender: misreported degree,
    // corrupted aggregates, and possibly replayed duplicate copies.
    size_t replays = TamperObservation(network_->adversary(), &obs);
    const net::StragglerPolicy& sp = params_.engine.straggler;
    double delay = scan_ms + extra_reply_delay_ms;
    bool delivered = false;
    for (size_t attempt = 0; attempt <= params_.engine.reply_retransmits;
         ++attempt) {
      if (attempt > 0) {
        if (!ConsumeRetry()) break;
        ++retransmits;
        double wait = net::RetryBackoffMs(sp, attempt, rng_);
        if (wait > 0.0) {
          // The retry leaves at its actual (jittered) schedule time: the
          // backoff wait lands in the cost ledger and in the copy's
          // arrival delay, not just in the history trace.
          delay += wait;
          network_->cost().RecordLatency(wait);
        }
        if (history_ != nullptr) {
          history_->Record(net::HistoryEventKind::kTimeout,
                           net::MessageType::kAggregateReply, peer, sink_);
          history_->Record(net::HistoryEventKind::kRetransmit,
                           net::MessageType::kAggregateReply, peer, sink_);
        }
      }
      if (SendReplyCopy(peer, &delay)) {
        delivered = true;
        break;
      }
      if (!network_->IsAlive(peer) || !network_->IsAlive(sink_)) break;
    }
    if (sp.health_tracking) buf_.health.Record(peer, delay, delivered);
    if (delivered) {
      ObserveReply(delay);
      DeliverReply(obs, delay);
      // Hedged retransmit: the sink's hedge timer fires before a straggling
      // primary can arrive, so one duplicate copy goes out; whichever copy
      // arrives first is accepted, the other is absorbed by the
      // (peer, selection_seq) dedup. Duplicating the *same* observation is
      // bias-free — only the delivery race changes.
      if (sp.hedged_replies) {
        const double hedge_due = HedgeDueMs();
        if (delay > hedge_due && ConsumeRetry()) {
          ++hedges;
          if (history_ != nullptr) {
            const uint64_t tag =
                net::DedupTag(dedup_round_, peer, obs.selection_seq);
            history_->Record(net::HistoryEventKind::kHedgeDue,
                             net::MessageType::kAggregateReply, peer, sink_);
            history_->Record(net::HistoryEventKind::kHedge,
                             net::MessageType::kAggregateReply, peer, sink_,
                             1, tag);
          }
          // The duplicate is served from the peer's already-computed scan:
          // it departs when the hedge timer fires, no second scan charge.
          double hedge_delay = hedge_due;
          if (SendReplyCopy(peer, &hedge_delay)) {
            DeliverReply(obs, hedge_delay);
          }
        }
      }
    }
    // Replayed copies each cross the wire independently. A copy that
    // arrives after the original is deduped; if the original was lost, the
    // first surviving copy is accepted (indistinguishable from a
    // retransmit).
    for (size_t replay = 0; replay < replays; ++replay) {
      if (!network_->IsAlive(peer) || !network_->IsAlive(sink_)) break;
      double copy_delay = delay;
      if (!SendReplyCopy(peer, &copy_delay)) continue;
      DeliverReply(obs, copy_delay);
    }
  }

  // Charges one reply copy and resolves its fate in the ledger/history,
  // exactly like SimulatedNetwork's transport does for routed sends.
  bool SendReplyCopy(graph::NodeId peer, double* delay) {
    network_->cost().RecordMessage(
        net::DefaultPayloadBytes(net::MessageType::kAggregateReply));
    if (history_ != nullptr) {
      history_->Record(net::HistoryEventKind::kSend,
                       net::MessageType::kAggregateReply, peer, sink_);
    }
    net::FaultDecision faults = network_->ApplyFaults(
        net::MessageType::kAggregateReply, peer, sink_, peer);
    *delay += network_->DrawHopLatency() * 0.5 + faults.extra_latency_ms;
    bool ok = faults.deliver && network_->IsAlive(peer) &&
              network_->IsAlive(sink_);
    if (ok) {
      network_->cost().RecordDelivered();
    } else {
      network_->cost().RecordDropped();
    }
    if (history_ != nullptr) {
      history_->Record(ok ? net::HistoryEventKind::kDeliver
                          : net::HistoryEventKind::kDrop,
                       net::MessageType::kAggregateReply, peer, sink_);
    }
    return ok;
  }

  // One reply copy racing to the sink. The payload parks in the session's
  // arena; the queued closure is (this, handle) — 16 bytes, inline in the
  // event slot, no allocation.
  void DeliverReply(const PeerObservation& obs, double arrival_delay) {
    ++pending_replies_;
    net::ArenaHandle handle = buf_.reply_arena.Acquire();
    buf_.reply_arena.at(handle) = obs;
    PhaseRuntime* self = this;
    events_.ScheduleAfter(arrival_delay,
                          [self, handle]() { self->ReplyArrived(handle); });
  }

  // Sink-side arrival: dedup on selection_seq, so only the first copy of a
  // selection is ever counted.
  void ReplyArrived(net::ArenaHandle handle) {
    const PeerObservation reply = buf_.reply_arena.at(handle);
    buf_.reply_arena.Release(handle);
    --pending_replies_;
    if (events_.now() > deadline_) {
      // The sink answered at the deadline; this copy is late and counts as
      // lost (a reply arriving *exactly at* the deadline is still taken).
      // The expire record resolves the tag for the history checker's
      // hedge-accounting rule. Only a copy the sink still *needed* latches
      // the deadline flag — a losing hedge duplicate straggling in after
      // its primary was accepted curtailed nothing.
      if (buf_.seen_seq[reply.selection_seq] == 0) deadline_hit = true;
      if (history_ != nullptr) {
        history_->Record(net::HistoryEventKind::kExpire,
                         net::MessageType::kAggregateReply, reply.peer, sink_,
                         1,
                         net::DedupTag(dedup_round_, reply.peer,
                                       reply.selection_seq));
      }
      return;
    }
    const uint64_t tag =
        net::DedupTag(dedup_round_, reply.peer, reply.selection_seq);
    P2PAQP_DCHECK(reply.selection_seq < buf_.seen_seq.size());
    const bool duplicate = buf_.seen_seq[reply.selection_seq] != 0;
    buf_.seen_seq[reply.selection_seq] = 1;
    if (duplicate && !util::BugArmed(util::InjectedBug::kDisableReplyDedup)) {
      ++duplicates;  // Replayed copy: dropped at the sink.
      if (history_ != nullptr) {
        history_->Record(net::HistoryEventKind::kDedupDrop,
                         net::MessageType::kAggregateReply, reply.peer, sink_,
                         1, tag);
      }
      return;
    }
    observations_.push_back(reply);  // Reply reached the sink.
    if (events_.now() > done_ms) done_ms = events_.now();
    if (history_ != nullptr) {
      history_->Record(net::HistoryEventKind::kDedupAccept,
                       net::MessageType::kAggregateReply, reply.peer, sink_,
                       1, tag);
    }
  }

  net::SimulatedNetwork* network_;
  const AsyncParams& params_;
  net::EventQueue& events_;
  const query::AggregateQuery& query_;
  const graph::NodeId sink_;
  util::Rng& rng_;
  net::HistoryRecorder* history_;
  const uint64_t dedup_round_;
  AsyncHotBuffers& buf_;
  std::vector<PeerObservation>& observations_;
  const double deadline_;  // Absolute event-clock instant; +inf = none.
  size_t* retry_budget_;   // Query-scoped; shared across both phases.
  size_t hops_left_;       // Global hop budget across all walkers.
  size_t restarts_left_;   // Global token-restart budget.
  size_t active_walkers_ = 0;
  size_t pending_replies_ = 0;
  // Adaptive-budget state (Walk-Not-Wait and hedging), warmed by the first
  // few observed transits/replies of the query itself.
  double hop_ewma_ = 0.0;
  size_t hop_samples_ = 0;
  double reply_ewma_ = 0.0;
  size_t reply_samples_ = 0;
};

}  // namespace

AsyncQuerySession::AsyncQuerySession(net::SimulatedNetwork* network,
                                     const SystemCatalog& catalog,
                                     const AsyncParams& params)
    : network_(network), catalog_(catalog), params_(params) {
  P2PAQP_CHECK(network_ != nullptr);
  P2PAQP_CHECK_GE(params_.walkers, 1u);
  P2PAQP_CHECK_GE(params_.walk.jump, 1u);
  P2PAQP_CHECK(params_.walk.variant == sampling::WalkVariant::kSimple)
      << "async session supports the simple walk only";
}

util::Result<std::vector<PeerObservation>> AsyncQuerySession::RunPhase(
    net::EventQueue& events, const query::AggregateQuery& query,
    graph::NodeId sink, size_t count, util::Rng& rng,
    TwoPhaseEngine::CollectionStats* stats, uint64_t* drain_allocs,
    double deadline_ms, size_t* retry_budget, double* elapsed_ms) {
  net::HistoryRecorder* history = network_->history();
  const uint64_t dedup_round = history != nullptr ? history->NextRound() : 0;
  // The queue's clock is monotone across phases (a fresh phase starts where
  // the previous drain ended), so the phase-relative deadline budget is
  // rebased to an absolute instant here and all phase timing is measured
  // from `phase_start`.
  const double phase_start = events.now();
  const double deadline_abs = std::isfinite(deadline_ms)
                                  ? phase_start + deadline_ms
                                  : deadline_ms;

  // Pre-size everything the drain touches, so the event loop below — the
  // steady-state window AllocGuard measures — does not grow a buffer even
  // on a cold session. Observations stay a fresh per-phase vector (the
  // caller moves it out); selections never exceed `count`, so reserving
  // here keeps the arrival-side push_backs allocation-free.
  std::vector<PeerObservation> observations;
  observations.reserve(count);
  buffers_.seen_seq.assign(count, 0);
  buffers_.neighbors.reserve(network_->graph().max_degree());
  buffers_.walker_current.clear();
  buffers_.walker_burn_left.clear();
  buffers_.walker_since_selection.clear();
  buffers_.walker_remaining.clear();
  buffers_.walker_incarnation.clear();
  buffers_.walker_current.reserve(params_.walkers);
  buffers_.walker_burn_left.reserve(params_.walkers);
  buffers_.walker_since_selection.reserve(params_.walkers);
  buffers_.walker_remaining.reserve(params_.walkers);
  buffers_.walker_incarnation.reserve(params_.walkers);
  // Pending set: one hop event per walker plus the replies in flight (the
  // adversary's replayed copies can push past it; that growth is amortized
  // and absent from the gated fault-free configs). Hedging doubles the
  // worst-case in-flight copies, so its slots are reserved *before* the
  // drain too — the zero-allocation gate covers straggler runs.
  const size_t reply_slots =
      params_.engine.straggler.hedged_replies ? count * 2 : count;
  buffers_.reply_arena.Reserve(reply_slots + 16);
  events.Reserve(params_.walkers + reply_slots + 16);

  PhaseRuntime runtime(network_, params_, events, query, sink, count, rng,
                       history, dedup_round, buffers_, observations,
                       deadline_abs, retry_budget);
  runtime.Launch(count);

  // Mid-query churn rides the same event clock, stepping while the phase
  // still has in-flight work.
  if (params_.churn != nullptr && params_.churn_interval_ms > 0.0) {
    PhaseRuntime* rt = &runtime;
    params_.churn->RunOnEventQueue(events, network_, params_.churn_interval_ms,
                                   [rt]() { return rt->InFlight(); });
  }

  util::AllocGuard alloc_guard;
  events.RunUntilEmpty();
  if (drain_allocs != nullptr) *drain_allocs += alloc_guard.allocations();

  if (elapsed_ms != nullptr) {
    // A deadline-curtailed phase answers exactly when its budget runs out;
    // otherwise the clock stops at the last needed arrival, not at the
    // post-answer drain of losing duplicate copies.
    *elapsed_ms = runtime.deadline_hit
                      ? deadline_ms
                      : std::max(runtime.done_ms, phase_start) - phase_start;
  }

  const size_t delivered = observations.size();
  const auto quorum = static_cast<size_t>(
      std::ceil(params_.engine.min_observation_quorum *
                static_cast<double>(count)));
  // A deadline-curtailed phase waives the quorum: the caller returns an
  // anytime answer with a widened CI instead of failing the query.
  if (count > 0 && delivered < quorum && !runtime.deadline_hit &&
      !util::BugArmed(util::InjectedBug::kSkipQuorumCheck)) {
    return util::Status::Unavailable(
        "async observation quorum not met: " + std::to_string(delivered) +
        "/" + std::to_string(count) + " delivered");
  }
  if (stats != nullptr) {
    stats->requested = count;
    stats->delivered = delivered;
    stats->lost = count - delivered;
    stats->reply_retransmits = runtime.retransmits;
    stats->walk_restarts = runtime.restarts;
    stats->duplicate_replies = runtime.duplicates;
    stats->hedges = runtime.hedges;
    stats->straggler_skips = runtime.straggler_skips;
    stats->deadline_hit = runtime.deadline_hit;
  }
  return std::move(observations);
}


util::Result<AsyncQueryReport> AsyncQuerySession::Execute(
    const query::AggregateQuery& query, graph::NodeId sink, util::Rng& rng) {
  if (query.op != query::AggregateOp::kCount &&
      query.op != query::AggregateOp::kSum) {
    return util::Status::InvalidArgument(
        "async session supports COUNT and SUM");
  }
  if (sink >= network_->num_peers() || !network_->IsAlive(sink)) {
    return util::Status::FailedPrecondition("sink peer is not live");
  }
  net::CostSnapshot before = network_->cost_snapshot();
  net::EventQueue events;
  uint64_t drain_allocs = 0;

  const net::StragglerPolicy& sp = params_.engine.straggler;
  const double deadline =
      params_.engine.deadline_ms > 0.0
          ? params_.engine.deadline_ms
          : std::numeric_limits<double>::infinity();
  // Retry/hedge allowance is query-scoped: both phases draw from one pot.
  size_t retry_budget = sp.retry_budget == 0 ? SIZE_MAX : sp.retry_budget;
  if (sp.health_tracking) {
    // Reset allocates (flat per-peer arrays), so it happens here — per
    // query, before any phase drains — keeping Record()/Tripped() free
    // inside the measured event loops. Phase II inherits phase I's scores.
    buffers_.health.Configure(sp);
    buffers_.health.Reset(network_->num_peers());
  }

  // ---- Phase I ----
  TwoPhaseEngine::CollectionStats phase1_stats;
  double phase1_elapsed = 0.0;
  double phase2_elapsed = 0.0;
  auto phase1 = RunPhase(events, query, sink, params_.engine.phase1_peers,
                         rng, &phase1_stats, &drain_allocs, deadline,
                         &retry_budget, &phase1_elapsed);
  if (!phase1.ok()) return phase1.status();

  double total_weight = catalog_.total_degree_weight();
  TwoPhaseEngine::CollectionStats phase2_stats;
  std::vector<PeerObservation> phase2_set;
  double estimated_total = 0.0;
  double cv_normalized = 0.0;
  if (phase1->size() >= 2) {
    CrossValidationResult cv = CrossValidate(ToWeighted(*phase1, query.op),
                                             total_weight,
                                             params_.engine.cv_repeats, rng);
    estimated_total = EstimateTotal(*phase1, query.op, total_weight);
    if (estimated_total <= 0.0 ||
        params_.engine.normalization == ErrorNormalization::kQueryAnswer) {
      estimated_total = std::fabs(cv.estimate);
    }
    cv_normalized =
        estimated_total == 0.0 ? 0.0 : cv.cv_error / estimated_total;
    // Sized from the observations that actually arrived (== phase1_peers on
    // the fault-free path): the cross-validation error was measured on
    // those.
    size_t phase2_peers = PhaseTwoSampleSize(
        phase1->size(), cv_normalized, query.required_error,
        params_.engine.min_phase2_peers,
        params_.engine.max_phase2_peers == 0
            ? network_->num_peers()
            : params_.engine.max_phase2_peers);

    // ---- Phase II ----
    if (phase1_elapsed >= deadline) {
      // Phase I consumed the whole deadline: phase II never launches and
      // its entire request counts as lost.
      phase2_stats.requested = phase2_peers;
      phase2_stats.lost = phase2_peers;
      phase2_stats.deadline_hit = true;
    } else {
      // Phase II inherits whatever deadline budget phase I left over.
      const double remaining = std::isfinite(deadline)
                                   ? deadline - phase1_elapsed
                                   : deadline;
      auto phase2 = RunPhase(events, query, sink, phase2_peers, rng,
                             &phase2_stats, &drain_allocs, remaining,
                             &retry_budget, &phase2_elapsed);
      if (!phase2.ok()) return phase2.status();
      phase2_set = std::move(*phase2);
    }
  } else if (!phase1_stats.deadline_hit) {
    return util::Status::Unavailable(
        "phase I delivered too few observations to cross-validate");
  }
  // (Fewer than 2 phase-I observations under a deadline: fall through and
  // answer anytime from whatever phase I scraped together.)

  const bool anytime = phase1_stats.deadline_hit || phase2_stats.deadline_hit;
  std::vector<PeerObservation> final_set;
  if (params_.engine.include_phase1_observations || anytime) {
    // An anytime answer uses every observation that reached the sink.
    final_set = *phase1;
    final_set.insert(final_set.end(), phase2_set.begin(), phase2_set.end());
  } else {
    final_set = phase2_set;
  }

  // Byzantine defenses, mirroring the synchronous engine.
  const RobustnessPolicy& policy = params_.engine.robustness;
  size_t suspected =
      AuditObservationDegrees(network_, policy, sink, &final_set, rng);
  if (final_set.empty() && !anytime) {
    return util::Status::Unavailable(
        "degree audit rejected every observation");
  }
  auto weighted = ToWeighted(final_set, query.op);

  AsyncQueryReport report;
  report.answer.suspected_peers = suspected;
  if (weighted.empty()) {
    // Deadline fired before a single observation survived: the anytime
    // answer is a zero estimate with maximal degradation, never an error.
    report.answer.estimate = 0.0;
    report.answer.variance = 0.0;
  } else if (policy.enabled()) {
    RobustEstimate robust =
        RobustHorvitzThompson(weighted, total_weight, policy);
    report.answer.estimate = robust.estimate;
    report.answer.variance = robust.variance;
    report.answer.trimmed_mass = robust.trimmed_mass;
  } else {
    report.answer.estimate = HorvitzThompson(weighted, total_weight);
    report.answer.variance = HorvitzThompsonVariance(weighted, total_weight);
  }
  // Degradation accounting mirrors the synchronous engine: reweight over
  // the survivors, widen the CI by the root of the loss ratio.
  report.answer.observations_lost = phase1_stats.lost + phase2_stats.lost;
  report.answer.walk_restarts =
      phase1_stats.walk_restarts + phase2_stats.walk_restarts;
  report.answer.duplicate_replies =
      phase1_stats.duplicate_replies + phase2_stats.duplicate_replies;
  report.answer.deadline_hit = anytime;
  report.answer.hedges_sent = phase1_stats.hedges + phase2_stats.hedges;
  report.answer.stragglers_skipped =
      phase1_stats.straggler_skips + phase2_stats.straggler_skips;
  report.answer.degraded = report.answer.observations_lost > 0 ||
                           suspected > 0 ||
                           report.answer.trimmed_mass > 0.0 || anytime;
  double inflation = 1.0;
  if (report.answer.observations_lost > 0) {
    size_t requested = phase1_stats.requested + phase2_stats.requested;
    size_t arrived = phase1_stats.delivered + phase2_stats.delivered;
    inflation = std::sqrt(static_cast<double>(requested) /
                          static_cast<double>(std::max<size_t>(arrived, 1)));
  }
  double discarded = std::min(report.answer.trimmed_mass, 0.9);
  if (discarded > 0.0) inflation *= std::sqrt(1.0 / (1.0 - discarded));
  report.answer.ci_half_width_95 =
      1.959963984540054 * std::sqrt(report.answer.variance) * inflation;
  report.answer.estimated_total = estimated_total;
  report.answer.cv_error_relative = cv_normalized;
  double denom = estimated_total > 0.0 ? estimated_total
                                       : std::fabs(report.answer.estimate);
  report.answer.achieved_error =
      denom > 0.0 ? report.answer.ci_half_width_95 / denom : 0.0;
  if (anytime && final_set.size() < 2) {
    // No usable spread: an anytime answer built from 0-1 observations has
    // no defensible CI, so report total relative error instead of a
    // spuriously perfect one.
    report.answer.achieved_error = 1.0;
  }
  report.answer.phase1_peers = phase1->size();
  report.answer.phase2_peers = phase2_set.size();
  report.answer.cost = net::CostDelta(network_->cost_snapshot(), before);
  report.answer.sample_tuples = report.answer.cost.tuples_sampled;
  // The event clock, not the sequential sum, is the real latency — measured
  // per phase up to the last arrival the sink needed. Losing hedge copies
  // and deduped replays drain after the answer is ready (keeping the arena
  // and ledger balanced) without counting as waiting, and an anytime answer
  // is produced *at* the deadline.
  const double total_elapsed = phase1_elapsed + phase2_elapsed;
  const double end_ms =
      anytime ? std::min(total_elapsed, deadline) : total_elapsed;
  report.answer.cost.latency_ms = end_ms;
  report.makespan_ms = end_ms;
  report.phase1_done_ms = std::min(phase1_elapsed, end_ms);
  report.events = events.executed();
  report.drain_allocs = drain_allocs;
  return report;
}

}  // namespace p2paqp::core

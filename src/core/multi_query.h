// Multi-query throughput layer: K concurrent aggregation queries multiplexed
// over shared sampling work.
//
// The paper pays one full random walk per query, but the Phase-I inclusion
// probabilities prob(p) = deg(p)/2|E| are query-independent: the visited-peer
// set {(peer, deg)} is a reusable *sample frame* (the paper's future-work
// "hybrid solutions that do some amount of pre-computations of samples").
// The scheduler exploits that three ways:
//
//   1. Sample-frame cache. The sink keeps one epoch-stamped pool of
//      stationary selections, reused across queries and batches. Staleness
//      rides the FreshnessCache epoch clock (data-churn ticks): a frame
//      older than `frame_ttl_epochs` is rebuilt; a query whose phase-II plan
//      m' outgrows the pool triggers an incremental top-up walk that only
//      pays for the missing selections.
//   2. Walker batching. The top-up walker token carries all K query bodies
//      behind one shared Gnutella header, so one hop serves K queries
//      (messages-per-query drops ~K x); replies are batched the same way.
//   3. Shared local work. Per-visit local execution is routed through the
//      FreshnessCache, so repeated query signatures across batches answer
//      from cache with zero local I/O.
//
// Every per-query estimate is still the plain (or robust) Horvitz-Thompson
// estimator over stationary selections with the correct weights, so each
// answer stays marginally unbiased (Theorem 1) — verified by the reused-
// frame statistical test. What reuse *does* introduce is correlation
// between the K answers of a batch, the price of amortization (see
// docs/PERFORMANCE.md for the model).
#ifndef P2PAQP_CORE_MULTI_QUERY_H_
#define P2PAQP_CORE_MULTI_QUERY_H_

#include <cstdint>
#include <vector>

#include "core/catalog.h"
#include "core/hybrid.h"
#include "core/two_phase.h"
#include "sampling/random_walk.h"
#include "util/rng.h"
#include "util/status.h"

namespace p2paqp::core {

struct SchedulerParams {
  // Per-query estimation parameters (phase-I size, quorum, retransmits,
  // robustness policy, ...). Shared by every query in a batch.
  EngineParams engine;
  // Walk parameters for frame (re)builds and top-ups; `walk.batch` is
  // overridden per top-up with the live batch width.
  sampling::WalkParams walk;
  // Frames older than this many FreshnessCache epochs are rebuilt from
  // scratch before reuse (the staleness window bounding frame-induced
  // error; 0 = rebuild every epoch tick).
  uint64_t frame_ttl_epochs = 4;
  // Ablation switches. Both true = the full scheduler; batch_walkers=false
  // walks with per-query (unbatched) tokens, reuse_frame=false discards the
  // frame between batches. With both false a K-batch degenerates to K
  // independent two-phase runs sharing nothing but the process.
  bool batch_walkers = true;
  bool reuse_frame = true;
};

// Frame bookkeeping for one ExecuteBatch call plus scheduler lifetime
// counters (the BENCH `frame_hits` telemetry).
struct SampleFrameStats {
  // Selections served from the frame carried over from PREVIOUS batches
  // (selections walked earlier in the same batch are not hits: a cold batch
  // always reports 0, however many phases consume its fresh walk).
  size_t frame_hits = 0;
  // Selections that needed fresh walking (rebuild or top-up).
  size_t frame_misses = 0;
  // Whole-frame rebuilds forced by epoch expiry.
  size_t rebuilds = 0;
  // FreshnessCache epoch the frame was stamped with.
  uint64_t frame_epoch = 0;
};

struct BatchResult {
  // One answer per input query, in input order. A query can fail (quorum
  // not met, sink dead) without failing its batch siblings.
  std::vector<util::Result<ApproximateAnswer>> answers;
  // Cost of the whole batch; the shared walk/reply work is indivisible, so
  // per-query cost is this divided by the batch width (per-query
  // ApproximateAnswer::cost is left zero).
  net::CostSnapshot cost;
  SampleFrameStats frame;
};

// Sink-side scheduler multiplexing batches of COUNT/SUM queries over one
// shared sample frame. Serial and deterministic: results depend only on the
// seeds and the call sequence, never on P2PAQP_THREADS (machine-checked by
// tests/determinism_test.cc).
class QueryScheduler {
 public:
  // `network` and `cache` must outlive the scheduler. `cache` is the shared
  // epoch clock *and* the per-peer local-result cache; it is required (the
  // frame's staleness window is defined by its epochs).
  QueryScheduler(net::SimulatedNetwork* network, const SystemCatalog& catalog,
                 const SchedulerParams& params, FreshnessCache* cache);

  // Executes `queries` as one batch against `sink`: shared phase-I frame,
  // per-query cross-validation sizing, shared phase-II top-up sized by the
  // largest plan, per-query Horvitz-Thompson estimation. Queries must be
  // kCount or kSum (the central estimation path).
  BatchResult ExecuteBatch(const std::vector<query::AggregateQuery>& queries,
                           graph::NodeId sink, util::Rng& rng);

  // Drops the cached frame; the next batch rebuilds from scratch.
  void InvalidateFrame() { frame_.selections.clear(); }

  // Lifetime frame counters (sums over all batches).
  const SampleFrameStats& lifetime_frame_stats() const {
    return lifetime_frame_;
  }
  size_t frame_size() const { return frame_.selections.size(); }

  // Selections carried over from previous batches at the top of the current
  // (or most recent) batch — the ceiling on legitimate frame hits, used by
  // the frame-accounting oracle in verify/protocol/invariants.cc.
  size_t batch_carry() const { return batch_carry_; }

  const SchedulerParams& params() const { return params_; }

 private:
  struct SampleFrame {
    std::vector<sampling::PeerVisit> selections;
    uint64_t epoch = 0;
  };

  // Per-query in-flight state while a batch executes.
  struct QueryState;

  // Expires the frame on epoch-TTL overrun and records the number of
  // carried-over selections; called once at the top of every batch so hit
  // accounting can tell carried selections from ones walked this batch.
  void BeginBatchFrame(SampleFrameStats* stats);

  // Ensures the frame holds >= `needed` selections, topping up with a
  // batch-`batch` walk when short. Records hits (needed selections already
  // present at batch start) and misses (fresh walks) into `stats`.
  util::Status EnsureFrame(size_t needed, graph::NodeId sink, uint32_t batch,
                           util::Rng& rng, SampleFrameStats* stats);

  // Runs frame selections [first, last) for the still-live queries in
  // `states` whose requested range covers the index: per-query local
  // execution through the cache, one batched reply per visit.
  void CollectRange(std::vector<QueryState>& states, size_t first, size_t last,
                    graph::NodeId sink, bool phase2, util::Rng& rng);

  net::SimulatedNetwork* network_;
  SystemCatalog catalog_;
  SchedulerParams params_;
  FreshnessCache* cache_;
  double total_weight_;
  SampleFrame frame_;
  // Frame size at the top of the current batch (after expiry): the only
  // selections that count as hits when a phase requests them.
  size_t batch_carry_ = 0;
  SampleFrameStats lifetime_frame_;
};

}  // namespace p2paqp::core

#endif  // P2PAQP_CORE_MULTI_QUERY_H_

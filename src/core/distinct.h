// Distinct-value estimation (the paper lists distinct values among the
// "more complex aggregates ... part of ongoing work"; this module implements
// a credible realization of that direction).
//
// Visited peers ship their *raw sub-sampled tuples* to the sink (unlike
// COUNT/SUM, distinctness cannot be composed from local scalars), incurring
// the nontrivial bandwidth cost Sec. 3.2 warns about — charged faithfully.
// The sink pools the samples and applies the Chao (1984) richness estimator
//   D_hat = d_obs + f1^2 / (2 f2)
// where f1/f2 are the counts of values seen exactly once/twice.
#ifndef P2PAQP_CORE_DISTINCT_H_
#define P2PAQP_CORE_DISTINCT_H_

#include <cstdint>
#include <vector>

#include "core/two_phase.h"
#include "data/tuple.h"

namespace p2paqp::core {

// Chao-84 lower-bound estimator over a pooled sample of values. Exposed for
// tests.
double ChaoDistinctEstimate(const std::vector<data::Value>& sample);

// Two-phase distinct-values plan: phase I gauges sample-coverage stability
// via the same half-vs-half cross-validation, phase II collects the sized
// sample and returns the Chao estimate of the number of distinct values
// matching the predicate.
util::Result<ApproximateAnswer> EstimateDistinctTwoPhase(
    TwoPhaseEngine& engine, const query::AggregateQuery& query,
    graph::NodeId sink, util::Rng& rng);

}  // namespace p2paqp::core

#endif  // P2PAQP_CORE_DISTINCT_H_

#include "core/histogram_estimator.h"

#include <algorithm>
#include <cmath>

namespace p2paqp::core {

namespace {

// One visited peer's shipped sample with its Horvitz-Thompson weight.
struct PeerHistogramSample {
  std::vector<data::Value> values;
  double tuple_weight = 0.0;  // (local/processed) / stationary_weight.
};

util::Result<std::vector<PeerHistogramSample>> CollectSamples(
    TwoPhaseEngine& engine, const HistogramRequest& request,
    graph::NodeId sink, size_t count, util::Rng& rng) {
  // Ride the COUNT machinery for the walk + local visit accounting.
  query::AggregateQuery query;
  query.op = query::AggregateOp::kCount;
  query.predicate = {request.lo, request.hi};
  auto observations = engine.CollectObservations(query, sink, count, rng);
  if (!observations.ok()) return observations.status();
  net::SimulatedNetwork* network = engine.network();
  std::vector<PeerHistogramSample> samples;
  samples.reserve(observations->size());
  for (const PeerObservation& obs : *observations) {
    PeerHistogramSample sample;
    if (obs.aggregate.processed_tuples == 0 || obs.stationary_weight <= 0.0) {
      samples.push_back(std::move(sample));
      continue;
    }
    data::Table rows = network->peer(obs.peer).database().Sample(
        engine.params().tuples_per_peer, rng);
    sample.values.reserve(rows.size());
    for (const data::Tuple& t : rows) sample.values.push_back(t.value);
    double scale = static_cast<double>(obs.aggregate.local_tuples) /
                   static_cast<double>(sample.values.empty()
                                           ? 1
                                           : sample.values.size());
    sample.tuple_weight = scale / obs.stationary_weight;
    // Raw values back to the sink: 4 bytes each.
    util::Status sent = network->SendDirect(
        net::MessageType::kSampleReply, obs.peer, sink,
        static_cast<uint32_t>(4 * sample.values.size()));
    // A reply lost to faults contributes an empty (zero-weight) sample.
    if (!sent.ok()) sample = PeerHistogramSample{};
    samples.push_back(std::move(sample));
  }
  return samples;
}

// Horvitz-Thompson weighted histogram over samples[begin, end): tuple v
// from peer s contributes (scale(s) / w(s)) * (W / m) so each bucket count
// estimates that bucket's global tuple count (W = total stationary weight,
// m = peers in this slice).
util::Histogram BuildHistogram(const HistogramRequest& request,
                               const std::vector<PeerHistogramSample>& samples,
                               size_t begin, size_t end, double total_weight) {
  auto histogram =
      util::Histogram::Make(request.lo, request.hi, request.num_buckets);
  P2PAQP_CHECK(histogram.ok());
  end = std::min(end, samples.size());
  if (begin >= end) return std::move(*histogram);
  double normalizer = total_weight / static_cast<double>(end - begin);
  for (size_t i = begin; i < end; ++i) {
    for (data::Value v : samples[i].values) {
      histogram->Add(v, samples[i].tuple_weight * normalizer);
    }
  }
  return std::move(*histogram);
}

}  // namespace

util::Result<HistogramAnswer> EstimateHistogramTwoPhase(
    TwoPhaseEngine& engine, const HistogramRequest& request,
    graph::NodeId sink, util::Rng& rng) {
  if (request.required_l1 <= 0.0) {
    return util::Status::InvalidArgument("required L1 must be positive");
  }
  if (request.hi < request.lo || request.num_buckets == 0) {
    return util::Status::InvalidArgument("bad bucketization");
  }
  net::SimulatedNetwork* network = engine.network();
  net::CostSnapshot before = network->cost_snapshot();

  auto phase1 = CollectSamples(engine, request, sink,
                               engine.params().phase1_peers, rng);
  if (!phase1.ok()) return phase1.status();
  size_t m = phase1->size();
  if (m < 4) {
    return util::Status::Unavailable("too few peers for histogram");
  }

  // Cross-validation: L1 distance between random half-sample histograms,
  // averaged in square over the usual repeated halvings.
  std::vector<size_t> order(m);
  for (size_t i = 0; i < m; ++i) order[i] = i;
  size_t half = m / 2;
  double squared_sum = 0.0;
  std::vector<PeerHistogramSample> shuffled(m);
  for (size_t r = 0; r < engine.params().cv_repeats; ++r) {
    rng.Shuffle(order);
    for (size_t i = 0; i < m; ++i) shuffled[i] = (*phase1)[order[i]];
    util::Histogram h1 =
        BuildHistogram(request, shuffled, 0, half, engine.total_weight());
    util::Histogram h2 = BuildHistogram(request, shuffled, half, 2 * half,
                                        engine.total_weight());
    double l1 = h1.NormalizedL1Distance(h2);
    squared_sum += l1 * l1;
  }
  double cv_l1 =
      std::sqrt(squared_sum / static_cast<double>(engine.params().cv_repeats));

  size_t phase2_peers = PhaseTwoSampleSize(
      m, cv_l1, request.required_l1, engine.params().min_phase2_peers,
      engine.params().max_phase2_peers == 0 ? network->num_peers()
                                            : engine.params().max_phase2_peers);

  auto phase2 = CollectSamples(engine, request, sink, phase2_peers, rng);
  if (!phase2.ok()) return phase2.status();

  std::vector<PeerHistogramSample> final_set = *phase2;
  if (engine.params().include_phase1_observations || final_set.empty()) {
    final_set.insert(final_set.end(), phase1->begin(), phase1->end());
  }

  HistogramAnswer answer{
      BuildHistogram(request, final_set, 0, final_set.size(),
                     engine.total_weight()),
      cv_l1,
      m,
      phase2->size(),
      0,
      net::CostDelta(network->cost_snapshot(), before)};
  answer.sample_tuples = answer.cost.tuples_sampled;
  return answer;
}

}  // namespace p2paqp::core

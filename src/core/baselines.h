// Naive sampling baselines for Fig. 7: the same adaptive two-phase plan but
// fed by BFS (sink-neighborhood flooding) or DFS (jump-less walk) samples.
// Both violate the stationary-sample assumption — BFS sees only the data
// cluster around the sink, DFS selects heavily correlated consecutive peers —
// so they miss the required error bound on clustered data while the random
// walk meets it.
#ifndef P2PAQP_CORE_BASELINES_H_
#define P2PAQP_CORE_BASELINES_H_

#include <memory>

#include "core/two_phase.h"

namespace p2paqp::core {

enum class BaselineKind {
  kBfs = 0,  // Sample = peers nearest the sink.
  kDfs,      // Sample = every peer on a random walk path (j = 0).
};

const char* BaselineKindToString(BaselineKind kind);

// Builds a TwoPhaseEngine wired to the requested baseline sampler.
// BFS peers are weighted uniformly (total weight M); DFS peers keep the
// degree weighting of the walk they ride (total weight 2|E|).
std::unique_ptr<TwoPhaseEngine> MakeBaselineEngine(
    net::SimulatedNetwork* network, const SystemCatalog& catalog,
    const EngineParams& params, BaselineKind kind);

}  // namespace p2paqp::core

#endif  // P2PAQP_CORE_BASELINES_H_

// Ablation: parallel walkers vs. end-to-end latency.
//
// The paper's primary cost is latency (Sec. 3.2), approximated by peers
// visited because a single walker visits them sequentially. Dispatching W
// independent walkers divides the critical path by ~W at identical message
// cost and accuracy — the natural engineering answer to the paper's cost
// model. Expected shape: latency ~ 1/W, error and messages flat.
#include "harness.h"

namespace p2paqp::bench {
namespace {

int Run(int argc, char** argv) {
  const BenchIo io = ParseBenchIo(argc, argv);
  WorldConfig config_world;
  config_world.cluster_level = 0.25;
  World world = BuildWorld(config_world);
  query::AggregateQuery query;
  query.op = query::AggregateOp::kCount;
  auto zipf = util::ZipfGenerator::Make(100, world.zipf_skew);
  query.predicate = query::PredicateForSelectivity(*zipf, 1, 0.30);
  query.required_error = 0.10;
  double truth = static_cast<double>(
      world.network.ExactCount(query.predicate.lo, query.predicate.hi));

  core::SystemCatalog catalog = world.catalog;
  catalog.suggested_jump = 10;
  catalog.suggested_burn_in = 50;
  core::EngineParams params;
  params.phase1_peers = 80;

  util::AsciiTable table(
      {"walkers", "latency_s", "messages", "error"});
  for (size_t walkers : {size_t{1}, size_t{2}, size_t{4}, size_t{8},
                         size_t{16}}) {
    double latency = 0.0;
    double messages = 0.0;
    double error = 0.0;
    const size_t kReps = 7;
    size_t successes = 0;
    for (size_t rep = 0; rep < kReps; ++rep) {
      util::Rng rng(900 + rep);
      auto sink = static_cast<graph::NodeId>(
          rng.UniformIndex(world.network.num_peers()));
      core::TwoPhaseEngine engine(
          &world.network, catalog, params,
          std::make_unique<sampling::ParallelWalkSampler>(
              &world.network,
              sampling::WalkParams{.jump = 10, .burn_in = 50}, walkers),
          catalog.total_degree_weight());
      auto answer = engine.Execute(query, sink, rng);
      if (!answer.ok()) continue;
      latency += answer->cost.latency_ms / 1000.0;
      messages += static_cast<double>(answer->cost.messages);
      error += std::fabs(answer->estimate - truth) /
               static_cast<double>(world.total_tuples);
      ++successes;
    }
    if (successes == 0) continue;
    auto n = static_cast<double>(successes);
    table.AddRow({util::AsciiTable::FormatInt(static_cast<int64_t>(walkers)),
                  util::AsciiTable::FormatDouble(latency / n, 1),
                  util::AsciiTable::FormatInt(
                      static_cast<int64_t>(messages / n)),
                  util::AsciiTable::FormatPercent(error / n)});
  }
  EmitFigure("Ablation: parallel walkers vs end-to-end latency",
             "COUNT, selectivity=30%, CL=0.25, j=10, required accuracy=0.10",
             table, io);
  return 0;
}

}  // namespace
}  // namespace p2paqp::bench

int main(int argc, char** argv) { return p2paqp::bench::Run(argc, argv); }

// google-benchmark micro-benchmarks of the library's hot paths: walker
// hops, local execution, estimation and topology/data generation.
//
// `--json` (or a non-empty P2PAQP_BENCH_JSON) writes the full google-benchmark
// JSON report to BENCH_micro_benchmarks.json in the working directory, the
// same convention the figure binaries use for their telemetry files.
#include <benchmark/benchmark.h>

#include <cstdlib>
#include <cstring>
#include <functional>
#include <queue>
#include <string>
#include <vector>

#include "core/aqp.h"
#include "net/arena.h"
#include "net/event_sim.h"
#include "util/alias_table.h"
#include "util/parallel.h"

namespace p2paqp {
namespace {

net::SimulatedNetwork& SharedNetwork() {
  static net::SimulatedNetwork* network = [] {
    util::Rng rng(1);
    auto graph = topology::MakeBarabasiAlbert(5000, 10, rng);
    P2PAQP_CHECK(graph.ok());
    data::DatasetParams dataset;
    dataset.num_tuples = 500000;
    auto table = data::GenerateDataset(dataset, rng);
    P2PAQP_CHECK(table.ok());
    auto dbs = data::PartitionAcrossPeers(*table, *graph,
                                          data::PartitionParams{}, rng);
    P2PAQP_CHECK(dbs.ok());
    auto net_result = net::SimulatedNetwork::Make(
        std::move(*graph), std::move(*dbs), net::NetworkParams{}, 2);
    P2PAQP_CHECK(net_result.ok());
    return new net::SimulatedNetwork(std::move(*net_result));
  }();
  return *network;
}

void BM_WalkerHops(benchmark::State& state) {
  net::SimulatedNetwork& network = SharedNetwork();
  sampling::RandomWalk walk(&network,
                            sampling::WalkParams{.jump = state.range(0) > 0
                                                     ? static_cast<size_t>(
                                                           state.range(0))
                                                     : 1});
  util::Rng rng(3);
  for (auto _ : state) {
    auto visits = walk.Collect(0, 10, rng);
    benchmark::DoNotOptimize(visits);
  }
  state.SetItemsProcessed(state.iterations() * 10 * state.range(0));
}
BENCHMARK(BM_WalkerHops)->Arg(1)->Arg(10)->Arg(100);

void BM_LocalExecute(benchmark::State& state) {
  net::SimulatedNetwork& network = SharedNetwork();
  query::AggregateQuery query;
  query.predicate = {1, 30};
  util::Rng rng(4);
  auto t = static_cast<uint64_t>(state.range(0));
  for (auto _ : state) {
    auto result = query::ExecuteLocal(network.peer(7).database(), query, t,
                                      rng);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_LocalExecute)->Arg(0)->Arg(25);

void BM_HorvitzThompson(benchmark::State& state) {
  util::Rng rng(5);
  std::vector<core::WeightedObservation> observations;
  for (int i = 0; i < state.range(0); ++i) {
    observations.push_back({rng.UniformDouble(0, 100),
                            static_cast<double>(rng.UniformInt(1, 40))});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::HorvitzThompson(observations, 1e5));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_HorvitzThompson)->Arg(80)->Arg(1000);

void BM_CrossValidate(benchmark::State& state) {
  util::Rng make_rng(6);
  std::vector<core::WeightedObservation> observations;
  for (int i = 0; i < 80; ++i) {
    observations.push_back({make_rng.UniformDouble(0, 100),
                            static_cast<double>(make_rng.UniformInt(1, 40))});
  }
  util::Rng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::CrossValidate(observations, 1e5, 10, rng));
  }
}
BENCHMARK(BM_CrossValidate);

void BM_ZipfSample(benchmark::State& state) {
  auto zipf = util::ZipfGenerator::Make(100, 1.0);
  util::Rng rng(8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf->Sample(rng));
  }
}
BENCHMARK(BM_ZipfSample);

std::vector<double> BenchWeights(size_t n) {
  util::Rng rng(11);
  std::vector<double> weights;
  weights.reserve(n);
  for (size_t i = 0; i < n; ++i) weights.push_back(rng.UniformDouble(0.1, 10.0));
  return weights;
}

// Linear-scan weighted draw (O(n) per draw) vs. the Walker alias table
// (O(1) per draw) over the same weight vector.
void BM_WeightedIndexLinear(benchmark::State& state) {
  std::vector<double> weights = BenchWeights(static_cast<size_t>(state.range(0)));
  util::Rng rng(12);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.WeightedIndex(weights));
  }
}
BENCHMARK(BM_WeightedIndexLinear)->Arg(100)->Arg(1000);

void BM_WeightedIndexAlias(benchmark::State& state) {
  util::AliasTable table(BenchWeights(static_cast<size_t>(state.range(0))));
  util::Rng rng(12);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.WeightedIndex(table));
  }
}
BENCHMARK(BM_WeightedIndexAlias)->Arg(100)->Arg(1000);

void BM_BuildPowerLawGraph(benchmark::State& state) {
  auto n = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    util::Rng rng(9);
    auto graph = topology::MakePowerLawWithEdgeCount(n, n * 10, rng);
    benchmark::DoNotOptimize(graph);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n) * 10);
}
BENCHMARK(BM_BuildPowerLawGraph)->Arg(1000)->Arg(10000);

// The pre-PR-5 event queue (std::function events ordered by a binary
// std::priority_queue), kept here verbatim as the comparison baseline for
// the slab + 4-ary-heap core in net/event_sim. The acceptance line is the
// new core running >= 2x the legacy throughput on a 1M-event schedule/run.
class LegacyEventQueue {
 public:
  using Callback = std::function<void()>;

  void ScheduleAt(double at, Callback callback) {
    heap_.push(Event{at, next_sequence_++, std::move(callback)});
  }
  bool RunOne() {
    if (heap_.empty()) return false;
    auto& top = const_cast<Event&>(heap_.top());
    double at = top.at;
    Callback callback = std::move(top.callback);
    heap_.pop();
    now_ = at;
    callback();
    return true;
  }
  double RunUntilEmpty() {
    while (RunOne()) {
    }
    return now_;
  }

 private:
  struct Event {
    double at = 0.0;
    uint64_t sequence = 0;
    Callback callback;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.sequence > b.sequence;
    }
  };
  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  double now_ = 0.0;
  uint64_t next_sequence_ = 0;
};

// Deterministic pseudo-times spreading events over a window so the heap
// stays deep (the async engine's worst case), cheap enough to not dominate.
inline double EventTime(uint64_t i) {
  return static_cast<double>((i * 2654435761u) % 1000000u);
}

void BM_EventQueueScheduleRun(benchmark::State& state) {
  const auto n = static_cast<uint64_t>(state.range(0));
  for (auto _ : state) {
    net::EventQueue queue;
    queue.Reserve(n);
    uint64_t sum = 0;
    for (uint64_t i = 0; i < n; ++i) {
      queue.ScheduleAt(EventTime(i), [&sum, i] { sum += i; });
    }
    queue.RunUntilEmpty(n + 1);
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_EventQueueScheduleRun)->Arg(1 << 14)->Arg(1000000);

void BM_EventQueueLegacyScheduleRun(benchmark::State& state) {
  const auto n = static_cast<uint64_t>(state.range(0));
  for (auto _ : state) {
    LegacyEventQueue queue;
    uint64_t sum = 0;
    for (uint64_t i = 0; i < n; ++i) {
      queue.ScheduleAt(EventTime(i), [&sum, i] { sum += i; });
    }
    queue.RunUntilEmpty();
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_EventQueueLegacyScheduleRun)->Arg(1 << 14)->Arg(1000000);

// Steady-state churn: a bounded pending set with every executed event
// scheduling a successor — the shape the async engine and the multi-query
// scheduler actually produce. The slab free-list recycles the same slots.
void BM_EventQueueChurn(benchmark::State& state) {
  const auto pending = static_cast<uint64_t>(state.range(0));
  constexpr uint64_t kEvents = 1 << 16;
  for (auto _ : state) {
    net::EventQueue queue;
    queue.Reserve(pending);
    uint64_t executed = 0;
    uint64_t scheduled = 0;
    std::function<void()> chain = [&] {
      ++executed;
      if (scheduled < kEvents) {
        queue.ScheduleAfter(EventTime(++scheduled) + 1.0, chain);
      }
    };
    for (uint64_t i = 0; i < pending; ++i) {
      ++scheduled;
      queue.ScheduleAt(EventTime(i), chain);
    }
    queue.RunUntilEmpty(kEvents + 1);
    benchmark::DoNotOptimize(executed);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(kEvents));
}
BENCHMARK(BM_EventQueueChurn)->Arg(64)->Arg(4096);

// Batched step events: `width` walkers all pending at the same tick, each
// step rescheduling its walker one tick later — the async engine's hop
// pattern. One pop gathers the whole tick into a single RunSteps call, so
// this measures the batch kernel's dispatch cost per hop (compare
// BM_EventQueueChurn, which pays the full per-callback pop for each event).
void BM_EventQueueStepBatch(benchmark::State& state) {
  const auto width = static_cast<uint64_t>(state.range(0));
  constexpr uint64_t kEvents = 1 << 16;
  struct Stepper final : public net::StepHandler {
    net::EventQueue* queue = nullptr;
    uint64_t executed = 0;
    uint64_t budget = 0;
    void RunSteps(const uint32_t* args, size_t n) override {
      for (size_t i = 0; i < n; ++i) {
        ++executed;
        if (budget > 0) {
          --budget;
          queue->ScheduleStepAfter(1.0, this, args[i]);
        }
      }
    }
  };
  for (auto _ : state) {
    net::EventQueue queue;
    queue.Reserve(width);
    Stepper stepper;
    stepper.queue = &queue;
    stepper.budget = kEvents - width;
    for (uint64_t i = 0; i < width; ++i) {
      queue.ScheduleStepAt(0.0, &stepper, static_cast<uint32_t>(i));
    }
    queue.RunUntilEmpty(kEvents + 1);
    benchmark::DoNotOptimize(stepper.executed);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(kEvents));
}
BENCHMARK(BM_EventQueueStepBatch)->Arg(4)->Arg(64)->Arg(4096);

// The reply-payload shape the async engine parks in its arena.
struct BenchPayload {
  uint64_t a = 0;
  uint64_t b = 0;
  double values[6] = {};
};

// Slot recycling at a bounded live set: the steady state acquires and
// releases the same cache-warm cells through the LIFO free list.
void BM_ArenaAcquireRelease(benchmark::State& state) {
  const auto live = static_cast<size_t>(state.range(0));
  constexpr uint64_t kOps = 1 << 16;
  std::vector<net::ArenaHandle> handles(live);
  for (auto _ : state) {
    net::SlotArena<BenchPayload> arena;
    arena.Reserve(live);
    for (size_t i = 0; i < live; ++i) handles[i] = arena.Acquire();
    uint64_t sum = 0;
    for (uint64_t op = 0; op < kOps; ++op) {
      size_t slot = op % live;
      arena.at(handles[slot]).a = op;
      sum += arena.at(handles[slot]).a;
      arena.Release(handles[slot]);
      handles[slot] = arena.Acquire();
    }
    for (size_t i = 0; i < live; ++i) arena.Release(handles[i]);
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(kOps));
}
BENCHMARK(BM_ArenaAcquireRelease)->Arg(16)->Arg(1024);

// The allocation pattern the arena replaced: one new/delete per in-flight
// payload.
void BM_ArenaHeapBaseline(benchmark::State& state) {
  const auto live = static_cast<size_t>(state.range(0));
  constexpr uint64_t kOps = 1 << 16;
  std::vector<BenchPayload*> payloads(live);
  for (auto _ : state) {
    for (size_t i = 0; i < live; ++i) payloads[i] = new BenchPayload;
    uint64_t sum = 0;
    for (uint64_t op = 0; op < kOps; ++op) {
      size_t slot = op % live;
      payloads[slot]->a = op;
      sum += payloads[slot]->a;
      delete payloads[slot];
      payloads[slot] = new BenchPayload;
    }
    for (size_t i = 0; i < live; ++i) delete payloads[i];
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(kOps));
}
BENCHMARK(BM_ArenaHeapBaseline)->Arg(16)->Arg(1024);

void BM_EndToEndCountQuery(benchmark::State& state) {
  net::SimulatedNetwork& network = SharedNetwork();
  core::SystemCatalog catalog = core::MakeCatalog(network.graph(), 10, 50);
  core::EngineParams params;
  params.phase1_peers = 80;
  core::TwoPhaseEngine engine(&network, catalog, params);
  query::AggregateQuery query;
  query.predicate = {1, 30};
  query.required_error = 0.1;
  util::Rng rng(10);
  for (auto _ : state) {
    auto answer = engine.Execute(query, 0, rng);
    benchmark::DoNotOptimize(answer);
  }
}
BENCHMARK(BM_EndToEndCountQuery);

}  // namespace
}  // namespace p2paqp

// BENCHMARK_MAIN(), plus the repo's --json/P2PAQP_BENCH_JSON convention:
// inject the google-benchmark JSON reporter flags and record the parallel
// layer's thread count and the world scale in the report context.
int main(int argc, char** argv) {
  bool json = false;
  const char* env = std::getenv("P2PAQP_BENCH_JSON");
  if (env != nullptr && env[0] != '\0') json = true;
  std::vector<char*> args;
  args.reserve(static_cast<size_t>(argc) + 2);
  for (int i = 0; i < argc; ++i) {
    if (i > 0 && std::strcmp(argv[i], "--json") == 0) {
      json = true;
      continue;  // Not a google-benchmark flag; consume it here.
    }
    args.push_back(argv[i]);
  }
  static std::string out_flag =
      "--benchmark_out=BENCH_micro_benchmarks.json";
  static std::string format_flag = "--benchmark_out_format=json";
  if (json) {
    args.push_back(out_flag.data());
    args.push_back(format_flag.data());
  }
  benchmark::AddCustomContext(
      "p2paqp_threads", std::to_string(p2paqp::util::ParallelThreads()));
  int filtered_argc = static_cast<int>(args.size());
  benchmark::Initialize(&filtered_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

// google-benchmark micro-benchmarks of the library's hot paths: walker
// hops, local execution, estimation and topology/data generation.
#include <benchmark/benchmark.h>

#include "core/aqp.h"

namespace p2paqp {
namespace {

net::SimulatedNetwork& SharedNetwork() {
  static net::SimulatedNetwork* network = [] {
    util::Rng rng(1);
    auto graph = topology::MakeBarabasiAlbert(5000, 10, rng);
    P2PAQP_CHECK(graph.ok());
    data::DatasetParams dataset;
    dataset.num_tuples = 500000;
    auto table = data::GenerateDataset(dataset, rng);
    P2PAQP_CHECK(table.ok());
    auto dbs = data::PartitionAcrossPeers(*table, *graph,
                                          data::PartitionParams{}, rng);
    P2PAQP_CHECK(dbs.ok());
    auto net_result = net::SimulatedNetwork::Make(
        std::move(*graph), std::move(*dbs), net::NetworkParams{}, 2);
    P2PAQP_CHECK(net_result.ok());
    return new net::SimulatedNetwork(std::move(*net_result));
  }();
  return *network;
}

void BM_WalkerHops(benchmark::State& state) {
  net::SimulatedNetwork& network = SharedNetwork();
  sampling::RandomWalk walk(&network,
                            sampling::WalkParams{.jump = state.range(0) > 0
                                                     ? static_cast<size_t>(
                                                           state.range(0))
                                                     : 1});
  util::Rng rng(3);
  for (auto _ : state) {
    auto visits = walk.Collect(0, 10, rng);
    benchmark::DoNotOptimize(visits);
  }
  state.SetItemsProcessed(state.iterations() * 10 * state.range(0));
}
BENCHMARK(BM_WalkerHops)->Arg(1)->Arg(10)->Arg(100);

void BM_LocalExecute(benchmark::State& state) {
  net::SimulatedNetwork& network = SharedNetwork();
  query::AggregateQuery query;
  query.predicate = {1, 30};
  util::Rng rng(4);
  auto t = static_cast<uint64_t>(state.range(0));
  for (auto _ : state) {
    auto result = query::ExecuteLocal(network.peer(7).database(), query, t,
                                      rng);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_LocalExecute)->Arg(0)->Arg(25);

void BM_HorvitzThompson(benchmark::State& state) {
  util::Rng rng(5);
  std::vector<core::WeightedObservation> observations;
  for (int i = 0; i < state.range(0); ++i) {
    observations.push_back({rng.UniformDouble(0, 100),
                            static_cast<double>(rng.UniformInt(1, 40))});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::HorvitzThompson(observations, 1e5));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_HorvitzThompson)->Arg(80)->Arg(1000);

void BM_CrossValidate(benchmark::State& state) {
  util::Rng make_rng(6);
  std::vector<core::WeightedObservation> observations;
  for (int i = 0; i < 80; ++i) {
    observations.push_back({make_rng.UniformDouble(0, 100),
                            static_cast<double>(make_rng.UniformInt(1, 40))});
  }
  util::Rng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::CrossValidate(observations, 1e5, 10, rng));
  }
}
BENCHMARK(BM_CrossValidate);

void BM_ZipfSample(benchmark::State& state) {
  auto zipf = util::ZipfGenerator::Make(100, 1.0);
  util::Rng rng(8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf->Sample(rng));
  }
}
BENCHMARK(BM_ZipfSample);

void BM_BuildPowerLawGraph(benchmark::State& state) {
  auto n = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    util::Rng rng(9);
    auto graph = topology::MakePowerLawWithEdgeCount(n, n * 10, rng);
    benchmark::DoNotOptimize(graph);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n) * 10);
}
BENCHMARK(BM_BuildPowerLawGraph)->Arg(1000)->Arg(10000);

void BM_EndToEndCountQuery(benchmark::State& state) {
  net::SimulatedNetwork& network = SharedNetwork();
  core::SystemCatalog catalog = core::MakeCatalog(network.graph(), 10, 50);
  core::EngineParams params;
  params.phase1_peers = 80;
  core::TwoPhaseEngine engine(&network, catalog, params);
  query::AggregateQuery query;
  query.predicate = {1, 30};
  query.required_error = 0.1;
  util::Rng rng(10);
  for (auto _ : state) {
    auto answer = engine.Execute(query, 0, rng);
    benchmark::DoNotOptimize(answer);
  }
}
BENCHMARK(BM_EndToEndCountQuery);

}  // namespace
}  // namespace p2paqp

BENCHMARK_MAIN();

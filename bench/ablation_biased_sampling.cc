// Ablation: biased sampling (the paper's future-work question 2).
//
// For increasingly selective predicates, compares the unbiased engine
// against the synopsis-biased walk at the same peer budget. The biased walk
// concentrates its visits on predicate-matching regions; its self-normalized
// estimate should win exactly where selectivity is low and clustering makes
// matching tuples rare along an unbiased walk.
#include "harness.h"

namespace p2paqp::bench {
namespace {

int Run(int argc, char** argv) {
  const BenchIo io = ParseBenchIo(argc, argv);
  WorldConfig config_world;
  config_world.cluster_level = 0.0;  // Matching tuples live in one region.
  World world = BuildWorld(config_world);
  auto zipf = util::ZipfGenerator::Make(100, world.zipf_skew);

  core::SystemCatalog catalog = world.catalog;
  catalog.suggested_jump = 10;
  catalog.suggested_burn_in = 50;

  const size_t kPeerBudget = 240;
  const size_t kReps = 5;

  util::AsciiTable table({"selectivity_pct", "error_unbiased",
                          "error_biased", "match_rate_unbiased",
                          "match_rate_biased"});
  for (double selectivity : {0.025, 0.05, 0.10, 0.30}) {
    query::AggregateQuery query;
    query.op = query::AggregateOp::kCount;
    query.predicate = query::PredicateForSelectivity(*zipf, 1, selectivity);
    query.required_error = 0.10;
    double truth = static_cast<double>(
        world.network.ExactCount(query.predicate.lo, query.predicate.hi));

    // Unbiased: plain walk + Horvitz-Thompson at the fixed budget.
    double unbiased_error = 0.0;
    double unbiased_match = 0.0;
    for (size_t rep = 0; rep < kReps; ++rep) {
      util::Rng rng(100 + rep);
      sampling::RandomWalkSampler sampler(
          &world.network, sampling::WalkParams{.jump = 10, .burn_in = 50});
      auto visits = sampler.SamplePeers(0, kPeerBudget, rng);
      if (!visits.ok()) continue;
      std::vector<core::WeightedObservation> observations;
      double matches = 0.0;
      for (const auto& visit : *visits) {
        auto aggregate = query::ExecuteLocal(
            world.network.peer(visit.peer).database(), query, 25, rng);
        observations.push_back(
            {aggregate.count_value, sampler.StationaryWeight(visit.peer)});
        matches += static_cast<double>(aggregate.count_value) /
                   std::max(1.0, static_cast<double>(aggregate.local_tuples));
      }
      double estimate = core::HorvitzThompson(
          observations, catalog.total_degree_weight());
      unbiased_error +=
          std::fabs(estimate - truth) / std::max(1.0, truth);
      unbiased_match += matches / static_cast<double>(kPeerBudget);
    }
    unbiased_error /= kReps;
    unbiased_match /= kReps;

    // Biased: synopsis-steered walk with self-normalized de-biasing.
    double biased_error = 0.0;
    double biased_match = 0.0;
    for (size_t rep = 0; rep < kReps; ++rep) {
      util::Rng rng(200 + rep);
      core::BiasedWalkSampler sampler(&world.network, query.predicate,
                                      /*jump=*/10, /*floor=*/0.05);
      auto visits = sampler.SamplePeers(0, kPeerBudget, rng);
      if (!visits.ok()) continue;
      std::vector<core::PeerObservation> observations;
      double matches = 0.0;
      for (const auto& visit : *visits) {
        core::PeerObservation obs;
        obs.peer = visit.peer;
        obs.degree = visit.degree;
        obs.stationary_weight = sampler.StationaryWeight(visit.peer);
        obs.aggregate = query::ExecuteLocal(
            world.network.peer(visit.peer).database(), query, 25, rng);
        matches +=
            static_cast<double>(obs.aggregate.count_value) /
            std::max(1.0, static_cast<double>(obs.aggregate.local_tuples));
        observations.push_back(obs);
      }
      double estimate = core::SelfNormalizedEstimate(
          observations, catalog.num_peers, query.op);
      biased_error += std::fabs(estimate - truth) / std::max(1.0, truth);
      biased_match += matches / static_cast<double>(kPeerBudget);
    }
    biased_error /= kReps;
    biased_match /= kReps;

    table.AddRow({util::AsciiTable::FormatDouble(selectivity * 100.0, 1),
                  util::AsciiTable::FormatPercent(unbiased_error),
                  util::AsciiTable::FormatPercent(biased_error),
                  util::AsciiTable::FormatPercent(unbiased_match),
                  util::AsciiTable::FormatPercent(biased_match)});
  }
  EmitFigure(
      "Ablation: biased vs unbiased sampling at a fixed 240-peer budget",
      "COUNT, CL=0 (clustered data), errors relative to the true count",
      table, io);
  return 0;
}

}  // namespace
}  // namespace p2paqp::bench

int main(int argc, char** argv) { return p2paqp::bench::Run(argc, argv); }

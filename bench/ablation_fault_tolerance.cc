// Ablation: fault tolerance under lossy transport and mid-query churn.
//
// The paper assumes peers "depart without notice" (Sec. 1) but evaluates on
// a fault-free simulator. This ablation injects the failures directly —
// per-message drops and probabilistic mid-query crashes — and measures what
// the resilient engine salvages: completion rate, how often the answer is
// flagged degraded, the error of what comes back, and the recovery work
// (walker restarts, extra messages). Expected shape: completion stays near
// 100% and error stays near the fault-free row through 10-20% drop rates,
// with message cost and restarts absorbing the damage; only the quorum
// guard ever refuses an answer.
#include "harness.h"

namespace p2paqp::bench {
namespace {

int Run(int argc, char** argv) {
  const BenchIo io = ParseBenchIo(argc, argv);
  WorldConfig config_world;
  config_world.cluster_level = 0.25;
  World world = BuildWorld(config_world);
  query::AggregateQuery query;
  query.op = query::AggregateOp::kCount;
  auto zipf = util::ZipfGenerator::Make(100, world.zipf_skew);
  query.predicate = query::PredicateForSelectivity(*zipf, 1, 0.30);
  query.required_error = 0.10;
  double truth = static_cast<double>(
      world.network.ExactCount(query.predicate.lo, query.predicate.hi));

  core::SystemCatalog catalog = world.catalog;
  catalog.suggested_jump = 10;
  catalog.suggested_burn_in = 50;
  core::EngineParams params;
  params.phase1_peers = 80;

  util::AsciiTable table({"drop", "crash_p", "completed", "degraded",
                          "error", "messages", "restarts"});
  const size_t kReps = 9;
  for (double crash_probability : {0.0, 0.001}) {
    for (double drop : {0.0, 0.05, 0.10, 0.20}) {
      size_t completed = 0;
      size_t degraded = 0;
      double error = 0.0;
      double messages = 0.0;
      double restarts = 0.0;
      for (size_t rep = 0; rep < kReps; ++rep) {
        // Fresh fault regime per repetition: revive every peer the previous
        // rep crashed, then reseed the injector so reps are independent.
        for (graph::NodeId p = 0; p < world.network.num_peers(); ++p) {
          world.network.SetAlive(p, true);
        }
        util::Rng rng(4200 + rep);
        auto sink = static_cast<graph::NodeId>(
            rng.UniformIndex(world.network.num_peers()));
        net::FaultPlan plan;
        plan.drop_probability = drop;
        plan.crash_probability = crash_probability;
        plan.crash_immune = {sink};
        world.network.InstallFaultPlan(plan, 9000 + rep);
        core::TwoPhaseEngine engine(&world.network, catalog, params);
        net::CostSnapshot before = world.network.cost_snapshot();
        auto answer = engine.Execute(query, sink, rng);
        if (!answer.ok()) continue;
        ++completed;
        if (answer->degraded) ++degraded;
        error += std::fabs(answer->estimate - truth) /
                 static_cast<double>(world.total_tuples);
        messages += static_cast<double>(
            net::CostDelta(world.network.cost_snapshot(), before).messages);
        restarts += static_cast<double>(answer->walk_restarts);
      }
      world.network.InstallFaultPlan(net::FaultPlan{}, 0);
      auto n = static_cast<double>(completed == 0 ? 1 : completed);
      table.AddRow(
          {util::AsciiTable::FormatPercent(drop),
           util::AsciiTable::FormatDouble(crash_probability, 3),
           util::AsciiTable::FormatPercent(static_cast<double>(completed) /
                                           static_cast<double>(kReps)),
           util::AsciiTable::FormatPercent(static_cast<double>(degraded) /
                                           static_cast<double>(kReps)),
           util::AsciiTable::FormatPercent(error / n),
           util::AsciiTable::FormatInt(static_cast<int64_t>(messages / n)),
           util::AsciiTable::FormatDouble(restarts / n, 1)});
    }
  }
  EmitFigure(
      "Ablation: fault tolerance (drop rate x mid-query churn)",
      "COUNT, selectivity=30%, CL=0.25, j=10, required accuracy=0.10, "
      "2 reply retransmits, quorum=0.25",
      table, io);
  return 0;
}

}  // namespace
}  // namespace p2paqp::bench

int main(int argc, char** argv) { return p2paqp::bench::Run(argc, argv); }

// Figure 8: clustering (CL) vs. error % for the COUNT technique.
//
// Expected shape: errors stay below the 10% requirement for every CL; the
// most clustered datasets (CL -> 0) are the hardest but the adaptive phase
// II compensates with more samples (Figure 9).
#include "harness.h"

namespace p2paqp::bench {
namespace {

int Run(int argc, char** argv) {
  const BenchIo io = ParseBenchIo(argc, argv);
  RunConfig base;
  base.op = query::AggregateOp::kCount;
  base.selectivity = 0.30;
  base.required_error = 0.10;
  auto rows = SweepClusterLevel({0.0, 0.25, 0.5, 0.75, 1.0}, base);

  util::AsciiTable table({"clustering", "error_synthetic", "error_gnutella"});
  for (const SweepRow& row : rows) {
    table.AddRow({util::AsciiTable::FormatDouble(row.x, 2),
                  util::AsciiTable::FormatPercent(row.synthetic.mean_error),
                  util::AsciiTable::FormatPercent(row.gnutella.mean_error)});
  }
  EmitFigure("Figure 8: Clustering vs Error % (COUNT)",
             "required accuracy=0.10, Z=0.2, j=10, selectivity=30%", table,
             io);
  return 0;
}

}  // namespace
}  // namespace p2paqp::bench

int main(int argc, char** argv) { return p2paqp::bench::Run(argc, argv); }

// Figure 14: clustering (CL) vs. sample size for the SUM technique.
//
// Expected shape: monotone decrease as CL -> 1, mirroring Figure 9.
#include "harness.h"

namespace p2paqp::bench {
namespace {

int Run(int argc, char** argv) {
  const BenchIo io = ParseBenchIo(argc, argv);
  RunConfig base;
  base.op = query::AggregateOp::kSum;
  base.selectivity = 1.0;
  base.required_error = 0.10;
  auto rows = SweepClusterLevel({0.0, 0.25, 0.5, 0.75, 1.0}, base);

  util::AsciiTable table(
      {"clustering", "samples_synthetic", "samples_gnutella"});
  for (const SweepRow& row : rows) {
    table.AddRow(
        {util::AsciiTable::FormatDouble(row.x, 2),
         util::AsciiTable::FormatInt(
             static_cast<int64_t>(row.synthetic.mean_sample_tuples)),
         util::AsciiTable::FormatInt(
             static_cast<int64_t>(row.gnutella.mean_sample_tuples))});
  }
  EmitFigure("Figure 14: Clustering vs Sample Size (SUM)",
             "Z=0.2, required accuracy=0.10, j=10, selectivity=1.0", table,
             io);
  return 0;
}

}  // namespace
}  // namespace p2paqp::bench

int main(int argc, char** argv) { return p2paqp::bench::Run(argc, argv); }

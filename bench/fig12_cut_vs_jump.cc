// Figure 12: cut size x jump size vs. error % for the SUM technique on the
// two-sub-graph topology.
//
// Expected shape: error is large when BOTH the cut and the jump are small
// (the walk stays trapped in one data cluster and the cross-validation is
// fooled by the correlated sample); increasing either the cut size or the
// jump size restores accuracy — the two are interchangeable.
#include "harness.h"

namespace p2paqp::bench {
namespace {

int Run(int argc, char** argv) {
  const BenchIo io = ParseBenchIo(argc, argv);
  util::AsciiTable table({"cut_size", "jump_size", "error", "sample_size"});
  for (size_t cut : {size_t{10}, size_t{1000}, size_t{10000}}) {
    WorldConfig config_world;
    config_world.num_subgraphs = 2;
    config_world.cut_edges = cut;
    config_world.cluster_level = 0.0;  // Sub-graphs hold disjoint data.
    config_world.skew = 0.2;
    World world = BuildWorld(config_world);
    for (size_t jump : {size_t{1}, size_t{10}, size_t{100}, size_t{1000},
                        size_t{10000}}) {
      RunConfig config;
      config.op = query::AggregateOp::kSum;
      config.selectivity = 1.0;
      config.required_error = 0.10;
      config.jump = jump;
      config.burn_in = jump;  // One decorrelation interval of burn-in.
      RunStats stats = RunExperiment(world, config);
      table.AddRow({util::AsciiTable::FormatInt(static_cast<int64_t>(cut)),
                    util::AsciiTable::FormatInt(static_cast<int64_t>(jump)),
                    util::AsciiTable::FormatPercent(stats.mean_error),
                    util::AsciiTable::FormatInt(
                        static_cast<int64_t>(stats.mean_sample_tuples))});
    }
  }
  EmitFigure("Figure 12: Cut Size vs Jump Size vs Error % (SUM)",
             "peers=10000, required accuracy=0.10, Z=0.2, sub-graphs=2, "
             "CL=0",
             table, io);
  return 0;
}

}  // namespace
}  // namespace p2paqp::bench

int main(int argc, char** argv) { return p2paqp::bench::Run(argc, argv); }

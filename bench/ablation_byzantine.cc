// Ablation: Byzantine peers, adversary fraction x behavior.
//
// The estimator trusts every reply: prob(p) = deg(p)/2|E| divides by a
// degree only the peer itself knows, and y(p) is whatever the peer ships.
// This ablation marks a fraction of peers adversarial (net/adversary.h) and
// compares the plain Horvitz-Thompson sink against the RobustnessPolicy
// defenses (MAD screening + winsorized HT + degree audit + reply dedup).
// Expected shape: plain error grows roughly linearly in the adversary
// fraction for value/degree attacks while the robust column stays near the
// honest row until the coalition approaches the screening breakdown point;
// the suspected/trimmed/dupes columns show the defenses doing the work.
#include "harness.h"

namespace p2paqp::bench {
namespace {

core::RobustnessPolicy DefensePolicy() {
  core::RobustnessPolicy policy;
  policy.estimator = core::RobustEstimatorKind::kWinsorized;
  policy.trim_fraction = 0.05;
  policy.mad_cutoff = 6.0;
  policy.degree_audit_probes = 3;
  return policy;
}

int Run(int argc, char** argv) {
  const BenchIo io = ParseBenchIo(argc, argv);
  WorldConfig config_world;
  config_world.cluster_level = 0.25;
  World world = BuildWorld(config_world);

  RunConfig base;
  base.op = query::AggregateOp::kCount;
  base.selectivity = 0.30;
  base.required_error = 0.10;
  base.repetitions = 9;

  util::AsciiTable table({"behavior", "fraction", "plain_err", "robust_err",
                          "suspected", "trimmed", "dupes", "lost"});
  const net::AdversaryBehavior behaviors[] = {
      net::AdversaryBehavior::kDegreeInflate,
      net::AdversaryBehavior::kScale,
      net::AdversaryBehavior::kOutlier,
      net::AdversaryBehavior::kReplay,
      net::AdversaryBehavior::kHijack,
  };
  for (net::AdversaryBehavior behavior : behaviors) {
    for (double fraction : {0.0, 0.05, 0.10, 0.20}) {
      net::AdversaryPlan plan = net::MakeBehaviorPlan(behavior, fraction);
      // The plan rides the world's network; every repetition clones it with
      // a rep-derived injector seed, so reps draw independent coalitions.
      world.network.InstallAdversaryPlan(
          plan, 0xB12A + static_cast<uint64_t>(fraction * 1000.0));

      RunConfig plain = base;
      RunStats plain_stats = RunExperiment(world, plain);
      RunConfig robust = base;
      robust.robustness = DefensePolicy();
      RunStats robust_stats = RunExperiment(world, robust);

      table.AddRow(
          {net::AdversaryBehaviorToString(behavior),
           util::AsciiTable::FormatPercent(fraction),
           util::AsciiTable::FormatPercent(plain_stats.mean_error),
           util::AsciiTable::FormatPercent(robust_stats.mean_error),
           util::AsciiTable::FormatDouble(robust_stats.mean_suspected_peers,
                                          1),
           util::AsciiTable::FormatPercent(robust_stats.mean_trimmed_mass),
           util::AsciiTable::FormatDouble(robust_stats.mean_duplicate_replies,
                                          1),
           util::AsciiTable::FormatDouble(
               robust_stats.mean_observations_lost, 1)});
    }
    world.network.InstallAdversaryPlan(net::AdversaryPlan{}, 0);
  }
  EmitFigure(
      "Ablation: Byzantine tolerance (adversary fraction x behavior)",
      "COUNT, selectivity=30%, CL=0.25, required accuracy=0.10; robust sink: "
      "winsorized HT (5%), MAD cutoff 6, 3 degree-audit probes, reply dedup",
      table, io);
  return 0;
}

}  // namespace
}  // namespace p2paqp::bench

int main(int argc, char** argv) { return p2paqp::bench::Run(argc, argv); }

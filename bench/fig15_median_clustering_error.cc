// Figure 15: clustering (CL) vs. error % for the MEDIAN technique
// (Sec. 5.6; error is the rank deviation |rank(answer) - N/2| / N).
//
// Expected shape: within ~10% rank error across the sweep, hardest at CL=0
// where per-peer medians span the whole domain.
#include "harness.h"

namespace p2paqp::bench {
namespace {

int Run(int argc, char** argv) {
  const BenchIo io = ParseBenchIo(argc, argv);
  RunConfig base;
  base.op = query::AggregateOp::kMedian;
  base.selectivity = 1.0;
  base.required_error = 0.10;
  auto rows = SweepClusterLevel({0.0, 0.25, 0.5, 0.75, 1.0}, base);

  util::AsciiTable table({"clustering", "error_synthetic", "error_gnutella"});
  for (const SweepRow& row : rows) {
    table.AddRow({util::AsciiTable::FormatDouble(row.x, 2),
                  util::AsciiTable::FormatPercent(row.synthetic.mean_error),
                  util::AsciiTable::FormatPercent(row.gnutella.mean_error)});
  }
  EmitFigure("Figure 15: Clustering vs Error % (MEDIAN)",
             "Z=0.2, required accuracy=0.10, j=10", table,
             io);
  return 0;
}

}  // namespace
}  // namespace p2paqp::bench

int main(int argc, char** argv) { return p2paqp::bench::Run(argc, argv); }

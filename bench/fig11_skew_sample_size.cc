// Figure 11: skew (Z) vs. sample size for the COUNT technique.
//
// Expected shape: sample size falls as skew grows — very frequent values
// are easy to estimate, so the cross-validation step plans smaller second
// phases.
#include "harness.h"

namespace p2paqp::bench {
namespace {

int Run(int argc, char** argv) {
  const BenchIo io = ParseBenchIo(argc, argv);
  RunConfig base;
  base.op = query::AggregateOp::kCount;
  // Fixed range predicate across the skew sweep (the paper's setup): as Z
  // grows the same range captures ever more of the (head-concentrated)
  // mass, so frequent values make the count easier to estimate.
  base.predicate = query::RangePredicate{1, 30};
  base.required_error = 0.10;
  // Answer-relative sizing: at high skew the same range captures far more
  // mass, its absolute tolerance loosens, and the plan shrinks — the
  // paper's "when skew increases, we need fewer samples".
  base.normalization = core::ErrorNormalization::kQueryAnswer;
  auto rows = SweepSkew({0.0, 0.5, 1.0, 1.5, 2.0}, base);

  util::AsciiTable table({"skew", "samples_synthetic", "samples_gnutella"});
  for (const SweepRow& row : rows) {
    table.AddRow(
        {util::AsciiTable::FormatDouble(row.x, 1),
         util::AsciiTable::FormatInt(
             static_cast<int64_t>(row.synthetic.mean_sample_tuples)),
         util::AsciiTable::FormatInt(
             static_cast<int64_t>(row.gnutella.mean_sample_tuples))});
  }
  EmitFigure("Figure 11: Skew vs Sample Size (COUNT)",
             "required accuracy=0.10, CL=0.25, j=10, selectivity=30%", table,
             io);
  return 0;
}

}  // namespace
}  // namespace p2paqp::bench

int main(int argc, char** argv) { return p2paqp::bench::Run(argc, argv); }

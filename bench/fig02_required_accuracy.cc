// Figure 2: required accuracy vs. achieved error % for the COUNT technique
// (CL = 0.25, Z = 0.2, j = 10, selectivity 30%), synthetic + Gnutella.
//
// Expected shape: achieved error always below the requirement, shrinking as
// the requirement tightens.
#include "harness.h"

namespace p2paqp::bench {
namespace {

int Run(int argc, char** argv) {
  const BenchIo io = ParseBenchIo(argc, argv);
  WorldConfig synthetic;
  synthetic.kind = WorldKind::kSynthetic;
  synthetic.cluster_level = 0.25;
  synthetic.skew = 0.2;
  WorldConfig gnutella = synthetic;
  gnutella.kind = WorldKind::kGnutella;

  World world_s = BuildWorld(synthetic);
  World world_g = BuildWorld(gnutella);

  util::AsciiTable table(
      {"required_accuracy", "error_synthetic", "error_gnutella",
       "samples_synthetic", "samples_gnutella"});
  for (double required : {0.25, 0.20, 0.15, 0.10}) {
    RunConfig config;
    config.op = query::AggregateOp::kCount;
    config.selectivity = 0.30;
    config.required_error = required;
    RunStats s = RunExperiment(world_s, config);
    RunStats g = RunExperiment(world_g, config);
    table.AddRow({util::AsciiTable::FormatDouble(required, 2),
                  util::AsciiTable::FormatPercent(s.mean_error),
                  util::AsciiTable::FormatPercent(g.mean_error),
                  util::AsciiTable::FormatInt(
                      static_cast<int64_t>(s.mean_sample_tuples)),
                  util::AsciiTable::FormatInt(
                      static_cast<int64_t>(g.mean_sample_tuples))});
  }
  EmitFigure("Figure 2: Required Accuracy vs Error % (COUNT)",
             "CL=0.25, Z=0.2, j=10, selectivity=30%", table,
             io);
  return 0;
}

}  // namespace
}  // namespace p2paqp::bench

int main(int argc, char** argv) { return p2paqp::bench::Run(argc, argv); }

// Ablation: phase-II-only answers (the paper's plan) vs. folding the
// phase-I observations into the final estimate.
//
// Phase I is already paid for; its observations come from the same
// stationary distribution as phase II's, so combining them is statistically
// free accuracy. Expected shape: the combined estimator roughly halves the
// mean error and slashes the rate of runs that exceed the requirement.
#include "harness.h"

namespace p2paqp::bench {
namespace {

int Run(int argc, char** argv) {
  const BenchIo io = ParseBenchIo(argc, argv);
  WorldConfig config_world;
  config_world.cluster_level = 0.25;
  World world = BuildWorld(config_world);

  query::AggregateQuery query;
  query.op = query::AggregateOp::kCount;
  auto zipf = util::ZipfGenerator::Make(100, world.zipf_skew);
  query.predicate = query::PredicateForSelectivity(*zipf, 1, 0.30);

  core::SystemCatalog catalog = world.catalog;
  catalog.suggested_jump = 10;
  catalog.suggested_burn_in = 50;

  util::AsciiTable table({"required_accuracy", "error_phase2_only",
                          "error_combined", "violations_phase2_only",
                          "violations_combined"});
  const size_t kReps = 25;
  for (double required : {0.20, 0.10, 0.05}) {
    query.required_error = required;
    double truth = static_cast<double>(
        world.network.ExactCount(query.predicate.lo, query.predicate.hi));
    auto run_mode = [&](bool combined, double* mean_error, int* violations) {
      core::EngineParams params;
      params.phase1_peers = 80;
      params.include_phase1_observations = combined;
      core::TwoPhaseEngine engine(&world.network, catalog, params);
      *mean_error = 0.0;
      *violations = 0;
      for (size_t rep = 0; rep < kReps; ++rep) {
        util::Rng rng(400 + rep);
        auto sink = static_cast<graph::NodeId>(
            rng.UniformIndex(world.network.num_peers()));
        auto answer = engine.Execute(query, sink, rng);
        if (!answer.ok()) continue;
        double error = std::fabs(answer->estimate - truth) /
                       static_cast<double>(world.total_tuples);
        *mean_error += error / static_cast<double>(kReps);
        if (error > required) ++*violations;
      }
    };
    double plain_error = 0.0;
    double combined_error = 0.0;
    int plain_violations = 0;
    int combined_violations = 0;
    run_mode(false, &plain_error, &plain_violations);
    run_mode(true, &combined_error, &combined_violations);
    char plain_buf[32];
    char combined_buf[32];
    std::snprintf(plain_buf, sizeof(plain_buf), "%d/%zu", plain_violations,
                  kReps);
    std::snprintf(combined_buf, sizeof(combined_buf), "%d/%zu",
                  combined_violations, kReps);
    table.AddRow({util::AsciiTable::FormatDouble(required, 2),
                  util::AsciiTable::FormatPercent(plain_error),
                  util::AsciiTable::FormatPercent(combined_error), plain_buf,
                  combined_buf});
  }
  EmitFigure(
      "Ablation: phase-II-only vs combined (phase I + II) estimation",
      "COUNT, selectivity=30%, CL=0.25, Z=0.2, j=10, 25 runs per cell",
      table, io);
  return 0;
}

}  // namespace
}  // namespace p2paqp::bench

int main(int argc, char** argv) { return p2paqp::bench::Run(argc, argv); }

// Figure 5: required accuracy x initial sample size -> total sample size on
// the real-world (calibrated Gnutella 2001) topology, 50 tuples per peer.
//
// Expected shape: same 1/required_accuracy^2 growth as Figure 4, with the
// skewed crawl degree distribution adding some overhead.
#include "harness.h"

namespace p2paqp::bench {
namespace {

int Run(int argc, char** argv) {
  const BenchIo io = ParseBenchIo(argc, argv);
  WorldConfig config_world;
  config_world.kind = WorldKind::kGnutella;
  config_world.cluster_level = 0.25;
  config_world.skew = 0.2;
  config_world.tuples_per_peer = 50;
  World world = BuildWorld(config_world);

  util::AsciiTable table({"required_accuracy", "initial_sample_size",
                          "sample_size", "error"});
  for (double required : {0.25, 0.20, 0.15, 0.10, 0.05}) {
    for (size_t initial : {size_t{1000}, size_t{2000}, size_t{3000}}) {
      RunConfig config;
      config.op = query::AggregateOp::kCount;
      config.selectivity = 0.30;
      config.required_error = required;
      config.initial_sample_tuples = initial;
      RunStats stats = RunExperiment(world, config);
      table.AddRow({util::AsciiTable::FormatDouble(required, 2),
                    util::AsciiTable::FormatInt(static_cast<int64_t>(initial)),
                    util::AsciiTable::FormatInt(
                        static_cast<int64_t>(stats.mean_sample_tuples)),
                    util::AsciiTable::FormatPercent(stats.mean_error)});
    }
  }
  EmitFigure(
      "Figure 5: Required Acc vs Initial Sample Size vs Sample Size "
      "(Gnutella)",
      "peers=22556, edges=52321, tuples/peer=50, CL=0.25, Z=0.2, j=10, "
      "selectivity=30%",
      table, io);
  return 0;
}

}  // namespace
}  // namespace p2paqp::bench

int main(int argc, char** argv) { return p2paqp::bench::Run(argc, argv); }

// Scale series: the 1M-peer super-peer world (docs/PERFORMANCE.md, "Scale
// tier"). Builds the same world as tests/scale_test.cc — scaled by
// P2PAQP_SCALE, so the CI quick pass at 0.05 exercises a 50k-peer version
// of the identical pipeline — and answers one full-domain COUNT through the
// event-driven engine.
//
// Ships the three gated metrics to the BENCH telemetry:
//   * bytes_per_peer — resident graph + peer-state + tuple bytes per peer
//     (upper-bounded by tools/bench_gate.py; the compressed-CSR contract);
//   * events_per_sec — event-core drain rate over the COUNT's event trace
//     (lower-bounded, threads-matched). Measured on a *warm* session: a
//     first identical query absorbs first-touch page faults and buffer
//     growth, the repeat measures the steady state the zero-allocation
//     contract is about;
//   * steady_state_allocs_per_event — heap allocations inside the warm
//     query's event-loop drains divided by its event count (pinned to
//     exactly 0 by the gate; the arena/inline-callback contract);
//   * p99_query_wall_ms / deadline_hit_rate — tail behavior of the same
//     COUNT under a Pareto-tail + slow-coalition regime, answered by the
//     full straggler-resilience stack under a deadline (both upper-bounded;
//     see DESIGN.md, "Straggler semantics").
#include <algorithm>
#include <chrono>
#include <vector>

#include <sys/resource.h>

#include "core/async_engine.h"
#include "net/event_sim.h"
#include "net/fault.h"
#include "core/catalog.h"
#include "data/generator.h"
#include "data/partitioner.h"
#include "harness.h"
#include "io/graph_io.h"
#include "net/network.h"
#include "query/query.h"
#include "topology/super_peer.h"
#include "util/rng.h"

namespace p2paqp::bench {
namespace {

constexpr size_t kFullScalePeers = 1000000;
constexpr size_t kTuplesPerPeer = 2;
constexpr graph::NodeId kSink = 0;  // A super-peer: well-connected sink.

double Seconds(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       since)
      .count();
}

// Process peak RSS in MB (ru_maxrss is KB on Linux). Sampled right after
// world construction, this is the high-water mark the out-of-core builder
// bounds: the gated world_build_peak_rss_mb metric.
double PeakRssMb() {
  struct rusage usage;
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0.0;
  return static_cast<double>(usage.ru_maxrss) / 1024.0;
}

int Run(int argc, char** argv) {
  const BenchIo io = ParseBenchIo(argc, argv);
  const double scale = ScaleFactor();
  const size_t num_peers = std::max(
      static_cast<size_t>(static_cast<double>(kFullScalePeers) * scale),
      static_cast<size_t>(20000));

  auto build_start = std::chrono::steady_clock::now();
  topology::SuperPeerParams topo;
  topo.num_nodes = num_peers;
  topo.super_fraction = 0.02;
  topo.core_edges_per_super = 4;
  topo.leaf_connections = 2;
  util::Rng topo_rng(20060403);
  auto topology = topology::MakeSuperPeer(topo, topo_rng);
  if (!topology.ok()) return 1;

  data::DatasetParams dataset;
  dataset.num_tuples = num_peers * kTuplesPerPeer;
  dataset.skew = 0.2;
  util::Rng data_rng(271828);
  auto table_data = data::GenerateDataset(dataset, data_rng);
  if (!table_data.ok()) return 1;
  data::PartitionParams partition;
  partition.cluster_level = 0.25;
  partition.bfs_root = kSink;
  auto databases = data::PartitionAcrossPeers(*table_data, topology->graph,
                                              partition, data_rng);
  if (!databases.ok()) return 1;

  net::NetworkParams params;
  params.parallel_peer_init = true;
  auto network = net::SimulatedNetwork::Make(
      std::move(topology->graph), std::move(*databases), params, 314159);
  if (!network.ok()) return 1;
  const double build_s = Seconds(build_start);
  const double build_peak_rss_mb = PeakRssMb();
  const double bytes_per_peer = static_cast<double>(network->MemoryBytes()) /
                                static_cast<double>(num_peers);
  // Fault the CSR pages in from static-partitioned lanes before the warm
  // query, so on NUMA hosts the adjacency pages a lane scans are resident
  // on that lane's node (a pure cache warm elsewhere).
  (void)io::PrefaultGraph(network->graph());

  core::SystemCatalog catalog =
      core::MakeCatalog(network->graph(), /*jump=*/4, /*burn_in=*/24);
  core::AsyncParams async;
  async.engine.phase1_peers = 48;
  async.engine.tuples_per_peer = kTuplesPerPeer;
  async.engine.cv_repeats = 4;
  async.walkers = 4;
  async.walk.jump = 4;
  async.walk.burn_in = 24;
  core::AsyncQuerySession session(&*network, catalog, async);

  query::AggregateQuery query;
  query.op = query::AggregateOp::kCount;
  query.predicate = query::RangePredicate{1, 100};
  query.required_error = 0.5;
  // Warm-up: same query, fresh identically-seeded RNG, so the session's
  // arena, scratches and event slabs grow to their plateau and the touched
  // world pages fault in. The walk itself replays identically (its draws
  // come from the query RNG); only hop-latency jitter differs.
  {
    util::Rng warm_rng(999331);
    auto warm = session.Execute(query, kSink, warm_rng);
    if (!warm.ok()) return 1;
  }
  // Measured repeats: aggregate events over several warm queries so the
  // drain rate reflects the event core, not timer granularity on a
  // sub-millisecond trace. A query visits a bounded peer set regardless of
  // world size (~500 events), so the repeat count is a flat 128: roughly a
  // 0.1-0.3s timed window at any scale, well above scheduler/timer noise.
  constexpr size_t kMeasuredRepeats = 128;
  uint64_t total_events = 0;
  uint64_t total_drain_allocs = 0;
  double total_query_s = 0.0;
  core::AsyncQueryReport last;
  for (size_t repeat = 0; repeat < kMeasuredRepeats; ++repeat) {
    util::Rng rng(999331);
    auto query_start = std::chrono::steady_clock::now();
    auto report = session.Execute(query, kSink, rng);
    total_query_s += Seconds(query_start);
    if (!report.ok()) return 1;
    total_events += report->events;
    total_drain_allocs += report->drain_allocs;
    last = *report;
  }
  const double events_per_sec =
      total_query_s > 0.0
          ? static_cast<double>(total_events) / total_query_s
          : 0.0;
  const double steady_allocs_per_event =
      total_events > 0 ? static_cast<double>(total_drain_allocs) /
                             static_cast<double>(total_events)
                       : 0.0;

  // The warm-repeat measurement drains a sharded event core: its worker
  // width is the resolved shard count, not the P2PAQP_THREADS default —
  // record the width the measurement actually used so the gate's
  // threads-matched comparisons line up.
  RecordScaleTelemetry(bytes_per_peer, events_per_sec,
                       steady_allocs_per_event,
                       net::EventQueue::ResolvedShards(), build_peak_rss_mb);

  // Straggler tier: the same COUNT under a heavy Pareto tail plus a 10%
  // slow coalition, answered by the full resilience stack (Walk-Not-Wait,
  // health breaker, hedging, backoff) under a deadline pinned to 4x the
  // fault-free makespan. The per-query simulated wall time and the anytime
  // rate are deterministic for the fixed seeds, so tools/bench_gate.py
  // upper-bounds both: a regression here means tail handling got worse.
  net::FaultPlan straggler;
  straggler.tail = net::LatencyTail::kPareto;
  straggler.tail_scale_ms = 10.0;
  straggler.tail_alpha = 1.1;
  straggler.slow_fraction = 0.1;
  straggler.slow_factor = 20.0;
  straggler.crash_immune = {kSink};
  network->InstallFaultPlan(straggler, 6071);
  core::AsyncParams resilient = async;
  resilient.engine.straggler.walk_not_wait = true;
  resilient.engine.straggler.health_tracking = true;
  resilient.engine.straggler.hedged_replies = true;
  resilient.engine.straggler.exponential_backoff = true;
  resilient.engine.deadline_ms = 4.0 * last.makespan_ms;
  core::AsyncQuerySession straggler_session(&*network, catalog, resilient);
  constexpr size_t kStragglerRepeats = 64;
  std::vector<double> makespans;
  makespans.reserve(kStragglerRepeats);
  size_t deadline_hits = 0;
  for (size_t repeat = 0; repeat < kStragglerRepeats; ++repeat) {
    util::Rng rng(515000 + repeat);
    auto report = straggler_session.Execute(query, kSink, rng);
    if (!report.ok()) return 1;
    makespans.push_back(report->makespan_ms);
    if (report->answer.deadline_hit) ++deadline_hits;
  }
  network->InstallFaultPlan(net::FaultPlan{}, 0);
  std::sort(makespans.begin(), makespans.end());
  const double p99_query_wall_ms =
      makespans[(makespans.size() * 99) / 100];
  const double deadline_hit_rate =
      static_cast<double>(deadline_hits) /
      static_cast<double>(kStragglerRepeats);
  RecordStragglerTelemetry(p99_query_wall_ms, deadline_hit_rate);

  util::AsciiTable out({"peers", "build_s", "build_rss_mb", "bytes_per_peer",
                        "events", "events_per_sec", "allocs_per_event",
                        "estimate", "p99_query_ms", "deadline_hits"});
  out.AddRow({util::AsciiTable::FormatInt(static_cast<int64_t>(num_peers)),
              util::AsciiTable::FormatDouble(build_s, 2),
              util::AsciiTable::FormatDouble(build_peak_rss_mb, 0),
              util::AsciiTable::FormatDouble(bytes_per_peer, 1),
              util::AsciiTable::FormatInt(static_cast<int64_t>(last.events)),
              util::AsciiTable::FormatDouble(events_per_sec, 0),
              util::AsciiTable::FormatDouble(steady_allocs_per_event, 3),
              util::AsciiTable::FormatDouble(last.answer.estimate, 0),
              util::AsciiTable::FormatDouble(p99_query_wall_ms, 0),
              util::AsciiTable::FormatPercent(deadline_hit_rate)});
  EmitFigure("Scale series: super-peer world, full-domain COUNT",
             "super_fraction=0.02, core_edges=4, leaf_connections=2, "
             "CL=0.25, Z=0.2",
             out, io);
  return 0;
}

}  // namespace
}  // namespace p2paqp::bench

int main(int argc, char** argv) { return p2paqp::bench::Run(argc, argv); }

// Ablation: uniform-tuple vs. block-level local sub-sampling (Sec. 4).
//
// Block-level sampling reads whole disk blocks — far cheaper local I/O —
// but when peers store their tuples under a clustered local index (sorted
// by value), blocks are internally correlated and each peer's scaled
// aggregate is noisier. The paper's claim: the cross-validation step
// notices and "the number of peers to be visited will increase". Expected
// shape: with sorted local tables, block-level plans visit more peers for
// the same accuracy; with unsorted (arrival-order) tables blocks behave
// like uniform tuples and the plans match.
#include "harness.h"

namespace p2paqp::bench {
namespace {

int Run(int argc, char** argv) {
  const BenchIo io = ParseBenchIo(argc, argv);
  util::AsciiTable table({"local_layout", "mode", "error", "phase2_peers",
                          "sample_tuples"});
  for (bool sorted_layout : {true, false}) {
    WorldConfig config_world;
    config_world.cluster_level = 1.0;  // Content mixed; layout is the knob.
    config_world.sort_local_tables = sorted_layout;
    World world = BuildWorld(config_world);
    query::AggregateQuery query;
    query.op = query::AggregateOp::kCount;
    auto zipf = util::ZipfGenerator::Make(100, world.zipf_skew);
    query.predicate = query::PredicateForSelectivity(*zipf, 1, 0.30);
    query.required_error = 0.10;
    double truth = static_cast<double>(
        world.network.ExactCount(query.predicate.lo, query.predicate.hi));
    core::SystemCatalog catalog = world.catalog;
    catalog.suggested_jump = 10;
    catalog.suggested_burn_in = 50;
    for (auto mode : {query::SubSampleMode::kUniformTuples,
                      query::SubSampleMode::kBlockLevel}) {
      core::EngineParams params;
      params.phase1_peers = 80;
      params.subsample_mode = mode;
      params.block_size = 25;
      core::TwoPhaseEngine engine(&world.network, catalog, params);
      double error = 0.0;
      double peers = 0.0;
      double tuples = 0.0;
      const size_t kReps = 9;
      size_t successes = 0;
      for (size_t rep = 0; rep < kReps; ++rep) {
        util::Rng rng(700 + rep);
        auto sink = static_cast<graph::NodeId>(
            rng.UniformIndex(world.network.num_peers()));
        auto answer = engine.Execute(query, sink, rng);
        if (!answer.ok()) continue;
        error += std::fabs(answer->estimate - truth) /
                 static_cast<double>(world.total_tuples);
        peers += static_cast<double>(answer->phase2_peers);
        tuples += static_cast<double>(answer->sample_tuples);
        ++successes;
      }
      if (successes == 0) continue;
      auto n = static_cast<double>(successes);
      table.AddRow(
          {sorted_layout ? "sorted" : "arrival_order",
           mode == query::SubSampleMode::kBlockLevel ? "block_level"
                                                     : "uniform_tuples",
           util::AsciiTable::FormatPercent(error / n),
           util::AsciiTable::FormatInt(static_cast<int64_t>(peers / n)),
           util::AsciiTable::FormatInt(static_cast<int64_t>(tuples / n))});
    }
  }
  EmitFigure("Ablation: uniform vs block-level local sub-sampling",
             "COUNT, selectivity=30%, t=25, block=25, required accuracy=0.10",
             table, io);
  return 0;
}

}  // namespace
}  // namespace p2paqp::bench

int main(int argc, char** argv) { return p2paqp::bench::Run(argc, argv); }

#include "harness.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace p2paqp::bench {

namespace {

size_t Scaled(size_t value, double scale, size_t floor_value) {
  auto scaled = static_cast<size_t>(static_cast<double>(value) * scale);
  return std::max(scaled, floor_value);
}

}  // namespace

// Normalized error per op (Sec. 5.5: errors in [0, 1]).
double NormalizedError(const World& world, const query::AggregateQuery& query,
                       double estimate) {
  const net::SimulatedNetwork& network = world.network;
  switch (query.op) {
    case query::AggregateOp::kCount: {
      double truth = static_cast<double>(
          network.ExactCount(query.predicate.lo, query.predicate.hi));
      return std::fabs(estimate - truth) /
             static_cast<double>(world.total_tuples);
    }
    case query::AggregateOp::kSum: {
      double truth = static_cast<double>(
          network.ExactSum(query.predicate.lo, query.predicate.hi));
      return std::fabs(estimate - truth) /
             static_cast<double>(world.total_sum);
    }
    case query::AggregateOp::kAvg: {
      double count = static_cast<double>(
          network.ExactCount(query.predicate.lo, query.predicate.hi));
      if (count == 0.0) return std::fabs(estimate);
      double truth = static_cast<double>(network.ExactSum(
                         query.predicate.lo, query.predicate.hi)) /
                     count;
      return truth == 0.0 ? std::fabs(estimate)
                          : std::fabs(estimate - truth) / std::fabs(truth);
    }
    case query::AggregateOp::kMedian:
    case query::AggregateOp::kQuantile: {
      // Rank deviation |rank(est) - phi*N| / N (Sec. 5.6: "the difference
      // between the true rank of the median that the algorithm returns, and
      // N/2").
      double phi = query.op == query::AggregateOp::kQuantile
                       ? query.quantile_phi
                       : 0.5;
      int64_t below = 0;
      for (graph::NodeId p = 0; p < network.num_peers(); ++p) {
        if (!network.IsAlive(p)) continue;
        for (const data::Tuple& t : network.peer(p).database().tuples()) {
          if (static_cast<double>(t.value) < estimate) ++below;
        }
      }
      double rank = static_cast<double>(below) /
                    static_cast<double>(world.total_tuples);
      return std::fabs(rank - phi);
    }
    case query::AggregateOp::kDistinct: {
      std::vector<bool> seen(256, false);
      size_t distinct = 0;
      for (graph::NodeId p = 0; p < network.num_peers(); ++p) {
        if (!network.IsAlive(p)) continue;
        for (const data::Tuple& t : network.peer(p).database().tuples()) {
          if (!query.predicate.Matches(t.value)) continue;
          auto index = static_cast<size_t>(t.value) & 0xff;
          if (!seen[index]) {
            seen[index] = true;
            ++distinct;
          }
        }
      }
      if (distinct == 0) return std::fabs(estimate);
      return std::fabs(estimate - static_cast<double>(distinct)) /
             static_cast<double>(distinct);
    }
  }
  return 0.0;
}

namespace {

RunStats RunWithEngine(World& world, const RunConfig& config,
                       core::TwoPhaseEngine& engine) {
  query::AggregateQuery query;
  query.op = config.op;
  query.predicate = ResolvePredicate(world, config);
  query.required_error = config.required_error;

  RunStats stats;
  double error_sum = 0.0;
  size_t successes = 0;
  for (size_t rep = 0; rep < config.repetitions; ++rep) {
    util::Rng rng(config.base_seed + rep * 1099511628211ULL);
    auto sink = static_cast<graph::NodeId>(
        rng.UniformIndex(world.network.num_peers()));
    while (!world.network.IsAlive(sink)) {
      sink = static_cast<graph::NodeId>(
          rng.UniformIndex(world.network.num_peers()));
    }
    auto answer = engine.Execute(query, sink, rng);
    if (!answer.ok()) {
      ++stats.failures;
      continue;
    }
    double error = NormalizedError(world, query, answer->estimate);
    error_sum += error;
    stats.max_error = std::max(stats.max_error, error);
    stats.mean_sample_tuples += static_cast<double>(answer->sample_tuples);
    stats.mean_phase2_peers += static_cast<double>(answer->phase2_peers);
    stats.mean_peers_visited +=
        static_cast<double>(answer->cost.peers_visited);
    stats.mean_messages += static_cast<double>(answer->cost.messages);
    stats.mean_bytes += static_cast<double>(answer->cost.bytes_shipped);
    stats.mean_latency_ms += answer->cost.latency_ms;
    ++successes;
  }
  if (successes > 0) {
    auto n = static_cast<double>(successes);
    stats.mean_error = error_sum / n;
    stats.mean_sample_tuples /= n;
    stats.mean_phase2_peers /= n;
    stats.mean_peers_visited /= n;
    stats.mean_messages /= n;
    stats.mean_bytes /= n;
    stats.mean_latency_ms /= n;
  }
  return stats;
}

core::EngineParams MakeEngineParams(const RunConfig& config) {
  core::EngineParams params;
  params.tuples_per_peer = config.tuples_per_peer_sample;
  params.phase1_peers = std::max<size_t>(
      4, config.initial_sample_tuples /
             std::max<uint64_t>(1, config.tuples_per_peer_sample));
  params.cv_repeats = 10;
  params.normalization = config.normalization;
  // Visiting more than ~1600 peers stops being "sampling"; the paper's
  // largest reported plans are ~560 peers (14k tuples at t=25). The cap
  // also bounds the jump=10000 sweeps of Figure 12.
  params.max_phase2_peers = 1600;
  return params;
}

core::SystemCatalog CatalogFor(const World& world, const RunConfig& config) {
  core::SystemCatalog catalog = world.catalog;
  catalog.suggested_jump = config.jump;
  catalog.suggested_burn_in = config.burn_in;
  return catalog;
}

}  // namespace

double ScaleFactor() {
  const char* env = std::getenv("P2PAQP_SCALE");
  if (env == nullptr) return 1.0;
  double scale = std::atof(env);
  return scale > 0.0 ? scale : 1.0;
}

World BuildWorld(const WorldConfig& config) {
  double scale = ScaleFactor();
  util::Rng rng(config.seed);

  size_t peers;
  size_t edges;
  graph::Graph overlay;
  if (config.kind == WorldKind::kGnutella) {
    peers = Scaled(config.num_peers != 0 ? config.num_peers
                                         : topology::kGnutella2001Peers,
                   scale, 64);
    edges = Scaled(config.num_edges != 0 ? config.num_edges
                                         : topology::kGnutella2001Edges,
                   scale, peers + 32);
    topology::GnutellaParams params;
    params.num_nodes = peers;
    params.num_edges = edges;
    auto graph = topology::MakeGnutellaSnapshot(params, rng);
    P2PAQP_CHECK(graph.ok()) << graph.status().ToString();
    overlay = std::move(*graph);
  } else {
    peers = Scaled(config.num_peers != 0 ? config.num_peers : 10000, scale,
                   64);
    edges = Scaled(config.num_edges != 0 ? config.num_edges : 100000, scale,
                   peers + 32);
    if (config.num_subgraphs > 1) {
      topology::ClusteredParams params;
      params.num_nodes = peers;
      params.num_edges = edges;
      params.num_subgraphs = config.num_subgraphs;
      // The cut participates in the topology scaling, clamped into the
      // feasible band (connectivity floor below, edge budget above).
      size_t cut = Scaled(config.cut_edges, scale, 1);
      size_t cut_floor = config.num_subgraphs - 1;
      size_t cut_ceiling =
          params.num_edges > params.num_nodes
              ? params.num_edges - params.num_nodes
              : cut_floor;
      params.cut_edges =
          std::clamp(cut, cut_floor, std::max(cut_floor, cut_ceiling));
      auto topo = topology::MakeClustered(params, rng);
      P2PAQP_CHECK(topo.ok()) << topo.status().ToString();
      overlay = std::move(topo->graph);
    } else {
      auto graph = topology::MakePowerLawWithEdgeCount(peers, edges, rng);
      P2PAQP_CHECK(graph.ok()) << graph.status().ToString();
      overlay = std::move(*graph);
    }
  }

  data::DatasetParams dataset;
  dataset.num_tuples = peers * config.tuples_per_peer;
  dataset.skew = config.skew;
  auto table = data::GenerateDataset(dataset, rng);
  P2PAQP_CHECK(table.ok()) << table.status().ToString();

  data::PartitionParams partition;
  partition.cluster_level = config.cluster_level;
  partition.sort_local_tables = config.sort_local_tables;
  auto databases = data::PartitionAcrossPeers(*table, overlay, partition, rng);
  P2PAQP_CHECK(databases.ok()) << databases.status().ToString();

  core::SystemCatalog catalog = core::MakeCatalog(overlay, 10, 50);
  auto network = net::SimulatedNetwork::Make(
      std::move(overlay), std::move(*databases), net::NetworkParams{},
      config.seed + 1);
  P2PAQP_CHECK(network.ok()) << network.status().ToString();

  World world{std::move(*network), catalog, config.skew, 0, 0};
  world.total_tuples = world.network.TotalTuples();
  world.total_sum = world.network.ExactSum(
      std::numeric_limits<data::Value>::min(),
      std::numeric_limits<data::Value>::max());
  return world;
}

query::RangePredicate ResolvePredicate(const World& world,
                                       const RunConfig& config) {
  if (config.predicate.has_value()) return *config.predicate;
  if (config.selectivity >= 1.0) return query::RangePredicate{1, 100};
  auto zipf = util::ZipfGenerator::Make(100, world.zipf_skew);
  P2PAQP_CHECK(zipf.ok());
  return query::PredicateForSelectivity(*zipf, 1, config.selectivity);
}

RunStats RunExperiment(World& world, const RunConfig& config) {
  core::TwoPhaseEngine engine(&world.network, CatalogFor(world, config),
                              MakeEngineParams(config));
  return RunWithEngine(world, config, engine);
}

RunStats RunBaselineExperiment(World& world, const RunConfig& config,
                               core::BaselineKind baseline) {
  auto engine =
      core::MakeBaselineEngine(&world.network, CatalogFor(world, config),
                               MakeEngineParams(config), baseline);
  return RunWithEngine(world, config, *engine);
}

std::vector<SweepRow> SweepClusterLevel(const std::vector<double>& levels,
                                        const RunConfig& base) {
  std::vector<SweepRow> rows;
  for (double level : levels) {
    WorldConfig synthetic;
    synthetic.cluster_level = level;
    synthetic.skew = 0.2;
    WorldConfig gnutella = synthetic;
    gnutella.kind = WorldKind::kGnutella;
    World world_s = BuildWorld(synthetic);
    World world_g = BuildWorld(gnutella);
    SweepRow row;
    row.x = level;
    row.synthetic = RunExperiment(world_s, base);
    row.gnutella = RunExperiment(world_g, base);
    rows.push_back(row);
  }
  return rows;
}

std::vector<SweepRow> SweepSkew(const std::vector<double>& skews,
                                const RunConfig& base) {
  std::vector<SweepRow> rows;
  for (double skew : skews) {
    WorldConfig synthetic;
    synthetic.cluster_level = 0.25;
    synthetic.skew = skew;
    WorldConfig gnutella = synthetic;
    gnutella.kind = WorldKind::kGnutella;
    World world_s = BuildWorld(synthetic);
    World world_g = BuildWorld(gnutella);
    SweepRow row;
    row.x = skew;
    row.synthetic = RunExperiment(world_s, base);
    row.gnutella = RunExperiment(world_g, base);
    rows.push_back(row);
  }
  return rows;
}

bool WantCsv(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--csv") == 0) return true;
  }
  return false;
}

void EmitFigure(const std::string& title, const std::string& setup,
                const util::AsciiTable& table, bool csv) {
  if (csv) {
    std::fputs(table.ToCsv().c_str(), stdout);
    return;
  }
  std::printf("=== %s ===\n", title.c_str());
  if (!setup.empty()) std::printf("%s\n", setup.c_str());
  std::printf("(scale=%.2f; set P2PAQP_SCALE to shrink/grow)\n\n",
              ScaleFactor());
  std::fputs(table.ToString().c_str(), stdout);
  std::fputs("\n", stdout);
}

}  // namespace p2paqp::bench

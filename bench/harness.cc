#include "harness.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <functional>
#include <limits>
#include <memory>
#include <mutex>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "util/parallel.h"

namespace p2paqp::bench {

namespace {

size_t Scaled(size_t value, double scale, size_t floor_value) {
  auto scaled = static_cast<size_t>(static_cast<double>(value) * scale);
  return std::max(scaled, floor_value);
}

// Process-wide telemetry across every RunExperiment/RunBaselineExperiment in
// the binary, dumped into BENCH_<name>.json by EmitFigure when --json (or
// P2PAQP_BENCH_JSON) is set. Mutex-guarded because sweeps record from
// parallel workers.
struct BenchTelemetry {
  std::mutex mu;
  std::chrono::steady_clock::time_point start =
      std::chrono::steady_clock::now();
  size_t experiments = 0;
  double messages = 0.0;
  double bytes = 0.0;
  double peers_visited = 0.0;
  double observations_lost = 0.0;
  double suspected_peers = 0.0;
  double trimmed_mass = 0.0;
  // Multi-query scheduler telemetry (core::QueryScheduler batches); zero
  // for binaries that never run the scheduler.
  size_t sched_queries = 0;
  double sched_wall_s = 0.0;
  double sched_messages = 0.0;
  double sched_frame_hits = 0.0;
  // Scale-world telemetry (bench/scale_world.cc); zero for binaries that
  // never build the scale world.
  double bytes_per_peer = 0.0;
  double events_per_sec = 0.0;
  double steady_allocs_per_event = 0.0;
  // Worker width the scale measurement actually used (0 = not a scale
  // binary; the JSON `threads` field then falls back to ParallelThreads).
  size_t measure_threads = 0;
  // Peak RSS (MB) right after world construction; 0 = not recorded.
  double world_build_peak_rss_mb = 0.0;
  // Straggler-tier telemetry (heavy-tail latency regimes); zero for
  // binaries that never run one.
  double p99_query_wall_ms = 0.0;
  double deadline_hit_rate = 0.0;
};

BenchTelemetry& Telemetry() {
  static BenchTelemetry* t = new BenchTelemetry;
  return *t;
}

void RecordRunTelemetry(const RunStats& stats) {
  BenchTelemetry& t = Telemetry();
  std::lock_guard<std::mutex> lock(t.mu);
  ++t.experiments;
  t.messages += stats.mean_messages;
  t.bytes += stats.mean_bytes;
  t.peers_visited += stats.mean_peers_visited;
  t.observations_lost += stats.mean_observations_lost;
  t.suspected_peers += stats.mean_suspected_peers;
  t.trimmed_mass += stats.mean_trimmed_mass;
}

}  // namespace

void RecordSchedulerTelemetry(size_t queries, double wall_s, double messages,
                              double frame_hits) {
  BenchTelemetry& t = Telemetry();
  std::lock_guard<std::mutex> lock(t.mu);
  t.sched_queries += queries;
  t.sched_wall_s += wall_s;
  t.sched_messages += messages;
  t.sched_frame_hits += frame_hits;
}

void RecordScaleTelemetry(double bytes_per_peer, double events_per_sec,
                          double steady_allocs_per_event,
                          size_t measure_threads,
                          double world_build_peak_rss_mb) {
  BenchTelemetry& t = Telemetry();
  std::lock_guard<std::mutex> lock(t.mu);
  t.bytes_per_peer = bytes_per_peer;
  t.events_per_sec = events_per_sec;
  t.steady_allocs_per_event = steady_allocs_per_event;
  t.measure_threads = measure_threads;
  t.world_build_peak_rss_mb = world_build_peak_rss_mb;
}

void RecordStragglerTelemetry(double p99_query_wall_ms,
                              double deadline_hit_rate) {
  BenchTelemetry& t = Telemetry();
  std::lock_guard<std::mutex> lock(t.mu);
  t.p99_query_wall_ms = p99_query_wall_ms;
  t.deadline_hit_rate = deadline_hit_rate;
}

// Normalized error per op (Sec. 5.5: errors in [0, 1]).
double NormalizedError(const World& world, const query::AggregateQuery& query,
                       double estimate) {
  const net::SimulatedNetwork& network = world.network;
  switch (query.op) {
    case query::AggregateOp::kCount: {
      double truth = static_cast<double>(
          network.ExactCount(query.predicate.lo, query.predicate.hi));
      return std::fabs(estimate - truth) /
             static_cast<double>(world.total_tuples);
    }
    case query::AggregateOp::kSum: {
      double truth = static_cast<double>(
          network.ExactSum(query.predicate.lo, query.predicate.hi));
      return std::fabs(estimate - truth) /
             static_cast<double>(world.total_sum);
    }
    case query::AggregateOp::kAvg: {
      double count = static_cast<double>(
          network.ExactCount(query.predicate.lo, query.predicate.hi));
      if (count == 0.0) return std::fabs(estimate);
      double truth = static_cast<double>(network.ExactSum(
                         query.predicate.lo, query.predicate.hi)) /
                     count;
      return truth == 0.0 ? std::fabs(estimate)
                          : std::fabs(estimate - truth) / std::fabs(truth);
    }
    case query::AggregateOp::kMedian:
    case query::AggregateOp::kQuantile: {
      // Rank deviation |rank(est) - phi*N| / N (Sec. 5.6: "the difference
      // between the true rank of the median that the algorithm returns, and
      // N/2").
      double phi = query.op == query::AggregateOp::kQuantile
                       ? query.quantile_phi
                       : 0.5;
      int64_t below = 0;
      for (graph::NodeId p = 0; p < network.num_peers(); ++p) {
        if (!network.IsAlive(p)) continue;
        for (const data::Tuple& t : network.peer(p).database().tuples()) {
          if (static_cast<double>(t.value) < estimate) ++below;
        }
      }
      double rank = static_cast<double>(below) /
                    static_cast<double>(world.total_tuples);
      return std::fabs(rank - phi);
    }
    case query::AggregateOp::kDistinct: {
      std::vector<bool> seen(256, false);
      size_t distinct = 0;
      for (graph::NodeId p = 0; p < network.num_peers(); ++p) {
        if (!network.IsAlive(p)) continue;
        for (const data::Tuple& t : network.peer(p).database().tuples()) {
          if (!query.predicate.Matches(t.value)) continue;
          auto index = static_cast<size_t>(t.value) & 0xff;
          if (!seen[index]) {
            seen[index] = true;
            ++distinct;
          }
        }
      }
      if (distinct == 0) return std::fabs(estimate);
      return std::fabs(estimate - static_cast<double>(distinct)) /
             static_cast<double>(distinct);
    }
  }
  return 0.0;
}

namespace {

// One repetition's measurements, recorded into its own slot so the parallel
// repetitions reduce deterministically in rep order afterwards.
struct RepOutcome {
  bool ok = false;
  double error = 0.0;
  double sample_tuples = 0.0;
  double phase2_peers = 0.0;
  double peers_visited = 0.0;
  double messages = 0.0;
  double bytes = 0.0;
  double latency_ms = 0.0;
  double observations_lost = 0.0;
  double suspected_peers = 0.0;
  double trimmed_mass = 0.0;
  double duplicate_replies = 0.0;
};

// Builds the engine for one repetition against that repetition's own cloned
// network (engines hold a network pointer, so they cannot be shared).
using EngineFactory = std::function<std::unique_ptr<core::TwoPhaseEngine>(
    net::SimulatedNetwork* network)>;

// Seed for the per-repetition network clone (latency jitter stream). Distinct
// from the per-repetition query RNG below so neither perturbs the other.
uint64_t RepNetworkSeed(uint64_t base_seed, size_t rep) {
  return util::MixSeed(base_seed ^
                       (0x9E3779B97F4A7C15ULL * (static_cast<uint64_t>(rep) + 1)));
}

RunStats RunWithEngine(const World& world, const RunConfig& config,
                       const EngineFactory& make_engine) {
  query::AggregateQuery query;
  query.op = config.op;
  query.predicate = ResolvePredicate(world, config);
  query.required_error = config.required_error;

  // Repetitions are independent by construction: each runs against its own
  // CloneWorld with seeds derived only from (base_seed, rep). Slots +
  // serial reduction keep the result bit-identical for any thread count.
  std::vector<RepOutcome> outcomes = util::ParallelMap(
      config.repetitions, [&](size_t rep) -> RepOutcome {
        World rep_world =
            CloneWorld(world, RepNetworkSeed(config.base_seed, rep));
        std::unique_ptr<core::TwoPhaseEngine> engine =
            make_engine(&rep_world.network);
        util::Rng rng(config.base_seed + rep * 1099511628211ULL);
        auto sink = static_cast<graph::NodeId>(
            rng.UniformIndex(rep_world.network.num_peers()));
        while (!rep_world.network.IsAlive(sink)) {
          sink = static_cast<graph::NodeId>(
              rng.UniformIndex(rep_world.network.num_peers()));
        }
        auto answer = engine->Execute(query, sink, rng);
        RepOutcome out;
        if (!answer.ok()) return out;
        out.ok = true;
        out.error = NormalizedError(world, query, answer->estimate);
        out.sample_tuples = static_cast<double>(answer->sample_tuples);
        out.phase2_peers = static_cast<double>(answer->phase2_peers);
        out.peers_visited = static_cast<double>(answer->cost.peers_visited);
        out.messages = static_cast<double>(answer->cost.messages);
        out.bytes = static_cast<double>(answer->cost.bytes_shipped);
        out.latency_ms = answer->cost.latency_ms;
        out.observations_lost =
            static_cast<double>(answer->observations_lost);
        out.suspected_peers = static_cast<double>(answer->suspected_peers);
        out.trimmed_mass = answer->trimmed_mass;
        out.duplicate_replies =
            static_cast<double>(answer->duplicate_replies);
        return out;
      });

  RunStats stats;
  double error_sum = 0.0;
  size_t successes = 0;
  for (const RepOutcome& out : outcomes) {
    if (!out.ok) {
      ++stats.failures;
      continue;
    }
    error_sum += out.error;
    stats.max_error = std::max(stats.max_error, out.error);
    stats.mean_sample_tuples += out.sample_tuples;
    stats.mean_phase2_peers += out.phase2_peers;
    stats.mean_peers_visited += out.peers_visited;
    stats.mean_messages += out.messages;
    stats.mean_bytes += out.bytes;
    stats.mean_latency_ms += out.latency_ms;
    stats.mean_observations_lost += out.observations_lost;
    stats.mean_suspected_peers += out.suspected_peers;
    stats.mean_trimmed_mass += out.trimmed_mass;
    stats.mean_duplicate_replies += out.duplicate_replies;
    ++successes;
  }
  if (successes > 0) {
    auto n = static_cast<double>(successes);
    stats.mean_error = error_sum / n;
    stats.mean_sample_tuples /= n;
    stats.mean_phase2_peers /= n;
    stats.mean_peers_visited /= n;
    stats.mean_messages /= n;
    stats.mean_bytes /= n;
    stats.mean_latency_ms /= n;
    stats.mean_observations_lost /= n;
    stats.mean_suspected_peers /= n;
    stats.mean_trimmed_mass /= n;
    stats.mean_duplicate_replies /= n;
  }
  RecordRunTelemetry(stats);
  return stats;
}

core::EngineParams MakeEngineParams(const RunConfig& config) {
  core::EngineParams params;
  params.tuples_per_peer = config.tuples_per_peer_sample;
  params.phase1_peers = std::max<size_t>(
      4, config.initial_sample_tuples /
             std::max<uint64_t>(1, config.tuples_per_peer_sample));
  params.cv_repeats = 10;
  params.normalization = config.normalization;
  // Visiting more than ~1600 peers stops being "sampling"; the paper's
  // largest reported plans are ~560 peers (14k tuples at t=25). The cap
  // also bounds the jump=10000 sweeps of Figure 12.
  params.max_phase2_peers = 1600;
  params.robustness = config.robustness;
  return params;
}

core::SystemCatalog CatalogFor(const World& world, const RunConfig& config) {
  core::SystemCatalog catalog = world.catalog;
  catalog.suggested_jump = config.jump;
  catalog.suggested_burn_in = config.burn_in;
  return catalog;
}

}  // namespace

double ScaleFactor() {
  const char* env = std::getenv("P2PAQP_SCALE");
  if (env == nullptr) return 1.0;
  double scale = std::atof(env);
  return scale > 0.0 ? scale : 1.0;
}

World BuildWorld(const WorldConfig& config) {
  double scale = ScaleFactor();
  util::Rng rng(config.seed);

  size_t peers;
  size_t edges;
  graph::Graph overlay;
  if (config.kind == WorldKind::kGnutella) {
    peers = Scaled(config.num_peers != 0 ? config.num_peers
                                         : topology::kGnutella2001Peers,
                   scale, 64);
    edges = Scaled(config.num_edges != 0 ? config.num_edges
                                         : topology::kGnutella2001Edges,
                   scale, peers + 32);
    topology::GnutellaParams params;
    params.num_nodes = peers;
    params.num_edges = edges;
    auto graph = topology::MakeGnutellaSnapshot(params, rng);
    P2PAQP_CHECK(graph.ok()) << graph.status().ToString();
    overlay = std::move(*graph);
  } else {
    peers = Scaled(config.num_peers != 0 ? config.num_peers : 10000, scale,
                   64);
    edges = Scaled(config.num_edges != 0 ? config.num_edges : 100000, scale,
                   peers + 32);
    if (config.num_subgraphs > 1) {
      topology::ClusteredParams params;
      params.num_nodes = peers;
      params.num_edges = edges;
      params.num_subgraphs = config.num_subgraphs;
      // The cut participates in the topology scaling, clamped into the
      // feasible band (connectivity floor below, edge budget above).
      size_t cut = Scaled(config.cut_edges, scale, 1);
      size_t cut_floor = config.num_subgraphs - 1;
      size_t cut_ceiling =
          params.num_edges > params.num_nodes
              ? params.num_edges - params.num_nodes
              : cut_floor;
      params.cut_edges =
          std::clamp(cut, cut_floor, std::max(cut_floor, cut_ceiling));
      auto topo = topology::MakeClustered(params, rng);
      P2PAQP_CHECK(topo.ok()) << topo.status().ToString();
      overlay = std::move(topo->graph);
    } else {
      auto graph = topology::MakePowerLawWithEdgeCount(peers, edges, rng);
      P2PAQP_CHECK(graph.ok()) << graph.status().ToString();
      overlay = std::move(*graph);
    }
  }

  data::DatasetParams dataset;
  dataset.num_tuples = peers * config.tuples_per_peer;
  dataset.skew = config.skew;
  auto table = data::GenerateDataset(dataset, rng);
  P2PAQP_CHECK(table.ok()) << table.status().ToString();

  data::PartitionParams partition;
  partition.cluster_level = config.cluster_level;
  partition.sort_local_tables = config.sort_local_tables;
  auto databases = data::PartitionAcrossPeers(*table, overlay, partition, rng);
  P2PAQP_CHECK(databases.ok()) << databases.status().ToString();

  core::SystemCatalog catalog = core::MakeCatalog(overlay, 10, 50);
  auto network = net::SimulatedNetwork::Make(
      std::move(overlay), std::move(*databases), net::NetworkParams{},
      config.seed + 1);
  P2PAQP_CHECK(network.ok()) << network.status().ToString();

  World world{std::move(*network), catalog, config.skew, 0, 0};
  world.total_tuples = world.network.TotalTuples();
  world.total_sum = world.network.ExactSum(
      std::numeric_limits<data::Value>::min(),
      std::numeric_limits<data::Value>::max());
  return world;
}

query::RangePredicate ResolvePredicate(const World& world,
                                       const RunConfig& config) {
  if (config.predicate.has_value()) return *config.predicate;
  if (config.selectivity >= 1.0) return query::RangePredicate{1, 100};
  auto zipf = util::ZipfGenerator::Make(100, world.zipf_skew);
  P2PAQP_CHECK(zipf.ok());
  return query::PredicateForSelectivity(*zipf, 1, config.selectivity);
}

World CloneWorld(const World& world, uint64_t network_seed) {
  return World{world.network.Clone(network_seed), world.catalog,
               world.zipf_skew, world.total_tuples, world.total_sum};
}

RunStats RunExperiment(const World& world, const RunConfig& config) {
  core::SystemCatalog catalog = CatalogFor(world, config);
  core::EngineParams params = MakeEngineParams(config);
  return RunWithEngine(world, config, [&](net::SimulatedNetwork* network) {
    return std::make_unique<core::TwoPhaseEngine>(network, catalog, params);
  });
}

RunStats RunBaselineExperiment(const World& world, const RunConfig& config,
                               core::BaselineKind baseline) {
  core::SystemCatalog catalog = CatalogFor(world, config);
  core::EngineParams params = MakeEngineParams(config);
  return RunWithEngine(world, config, [&](net::SimulatedNetwork* network) {
    return core::MakeBaselineEngine(network, catalog, params, baseline);
  });
}

namespace {

// Shared driver for the CL/skew sweeps: the points are independent (each
// builds its own pair of worlds from a fixed seed), so they run through
// ParallelMap and land in x order regardless of completion order.
std::vector<SweepRow> RunSweep(
    const std::vector<double>& xs, const RunConfig& base,
    const std::function<WorldConfig(double)>& synthetic_config) {
  return util::ParallelMap(xs.size(), [&](size_t i) {
    WorldConfig synthetic = synthetic_config(xs[i]);
    WorldConfig gnutella = synthetic;
    gnutella.kind = WorldKind::kGnutella;
    World world_s = BuildWorld(synthetic);
    World world_g = BuildWorld(gnutella);
    SweepRow row;
    row.x = xs[i];
    row.synthetic = RunExperiment(world_s, base);
    row.gnutella = RunExperiment(world_g, base);
    return row;
  });
}

}  // namespace

std::vector<SweepRow> SweepClusterLevel(const std::vector<double>& levels,
                                        const RunConfig& base) {
  return RunSweep(levels, base, [](double level) {
    WorldConfig synthetic;
    synthetic.cluster_level = level;
    synthetic.skew = 0.2;
    return synthetic;
  });
}

std::vector<SweepRow> SweepSkew(const std::vector<double>& skews,
                                const RunConfig& base) {
  return RunSweep(skews, base, [](double skew) {
    WorldConfig synthetic;
    synthetic.cluster_level = 0.25;
    synthetic.skew = skew;
    return synthetic;
  });
}

bool WantCsv(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--csv") == 0) return true;
  }
  return false;
}

BenchIo ParseBenchIo(int argc, char** argv) {
  Telemetry();  // Start the wall clock before any work happens.
  BenchIo io;
  io.csv = WantCsv(argc, argv);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) io.json = true;
  }
  const char* env = std::getenv("P2PAQP_BENCH_JSON");
  if (env != nullptr && env[0] != '\0') io.json = true;
  if (argc > 0 && argv[0] != nullptr) {
    const char* base = std::strrchr(argv[0], '/');
    io.name = base != nullptr ? base + 1 : argv[0];
  }
  if (io.name.empty()) io.name = "bench";
  return io;
}

void EmitFigure(const std::string& title, const std::string& setup,
                const util::AsciiTable& table, bool csv) {
  if (csv) {
    std::fputs(table.ToCsv().c_str(), stdout);
    return;
  }
  std::printf("=== %s ===\n", title.c_str());
  if (!setup.empty()) std::printf("%s\n", setup.c_str());
  std::printf("(scale=%.2f; set P2PAQP_SCALE to shrink/grow)\n\n",
              ScaleFactor());
  std::fputs(table.ToString().c_str(), stdout);
  std::fputs("\n", stdout);
}

void EmitFigure(const std::string& title, const std::string& setup,
                const util::AsciiTable& table, const BenchIo& io) {
  EmitFigure(title, setup, table, io.csv);
  if (!io.json) return;
  BenchTelemetry& t = Telemetry();
  std::lock_guard<std::mutex> lock(t.mu);
  double wall_s = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - t.start)
                      .count();
  double n = t.experiments > 0 ? static_cast<double>(t.experiments) : 1.0;
  std::string path = "BENCH_" + io.name + ".json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f,
               "{\n"
               "  \"name\": \"%s\",\n"
               "  \"wall_time_s\": %.6f,\n"
               "  \"threads\": %zu,\n"
               "  \"scale\": %.4f,\n"
               "  \"experiments\": %zu,\n"
               "  \"mean_messages\": %.3f,\n"
               "  \"mean_bytes\": %.3f,\n"
               "  \"mean_peers_visited\": %.3f,\n"
               "  \"mean_observations_lost\": %.3f,\n"
               "  \"mean_suspected_peers\": %.3f,\n"
               "  \"mean_trimmed_mass\": %.6f,\n"
               "  \"queries_per_sec\": %.3f,\n"
               "  \"messages_per_query\": %.3f,\n"
               "  \"frame_hits\": %.1f,\n"
               "  \"bytes_per_peer\": %.1f,\n"
               "  \"events_per_sec\": %.1f,\n"
               "  \"steady_state_allocs_per_event\": %.3f,\n"
               "  \"world_build_peak_rss_mb\": %.1f,\n"
               "  \"p99_query_wall_ms\": %.1f,\n"
               "  \"deadline_hit_rate\": %.4f\n"
               "}\n",
               io.name.c_str(), wall_s,
               // Scale binaries report the worker width their measurement
               // actually ran at; everything else reports the env default.
               t.measure_threads > 0 ? t.measure_threads
                                     : util::ParallelThreads(),
               ScaleFactor(),
               t.experiments, t.messages / n, t.bytes / n,
               t.peers_visited / n, t.observations_lost / n,
               t.suspected_peers / n, t.trimmed_mass / n,
               t.sched_wall_s > 0.0
                   ? static_cast<double>(t.sched_queries) / t.sched_wall_s
                   : 0.0,
               t.sched_queries > 0
                   ? t.sched_messages / static_cast<double>(t.sched_queries)
                   : 0.0,
               t.sched_frame_hits, t.bytes_per_peer, t.events_per_sec,
               t.steady_allocs_per_event, t.world_build_peak_rss_mb,
               t.p99_query_wall_ms, t.deadline_hit_rate);
  std::fclose(f);
}

}  // namespace p2paqp::bench

// Ablation: straggler resilience under heavy-tailed latency.
//
// The paper's walks assume prompt peers; under a Pareto(alpha=1.1) reply
// tail plus a 10% "slow coalition" (alive but consistently 20x tardy), one
// straggler stalls a walker and the PR 1 fixed-timeout retransmit turns the
// tail into a wall-clock cliff. This ablation peels the resilience layer
// apart on the event-driven engine, whose makespan is the true end-to-end
// query wall time: Walk-Not-Wait alone (fork past tardy transits), hedged
// replies + jittered backoff alone (race duplicate replies out of the
// slowest decile), the full stack with the health breaker, and the full
// stack under a deadline (anytime answers). Expected shape: the fixed
// timer's p99 is dominated by the largest single tail draw; Walk-Not-Wait
// and hedging each cut deep into it and compose to well over the 3x p99
// improvement the acceptance bar asks for, at an unchanged mean error
// (unbiasedness is proven separately at 5.5 sigma by
// tests/statistical/stat_straggler_test.cc).
#include <algorithm>
#include <cmath>
#include <vector>

#include "harness.h"
#include "net/fault.h"
#include "net/health.h"
#include "util/parallel.h"

namespace p2paqp::bench {
namespace {

constexpr graph::NodeId kSink = 0;
constexpr size_t kReps = 48;

struct Arm {
  const char* name;
  net::StragglerPolicy policy;
  double deadline_ms = 0.0;
};

struct ArmStats {
  double mean_error = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double hedges = 0.0;
  double skips = 0.0;
  double deadline_hit_rate = 0.0;
  size_t failures = 0;
};

double Percentile(std::vector<double> sorted, double q) {
  if (sorted.empty()) return 0.0;
  std::sort(sorted.begin(), sorted.end());
  size_t idx = static_cast<size_t>(q * static_cast<double>(sorted.size()));
  return sorted[std::min(idx, sorted.size() - 1)];
}

ArmStats RunArm(const World& world, const query::AggregateQuery& query,
                const Arm& arm) {
  struct Rep {
    double error = -1.0;
    double makespan_ms = 0.0;
    double hedges = 0.0;
    double skips = 0.0;
    bool deadline_hit = false;
  };
  std::vector<Rep> reps = util::ParallelMap(kReps, [&](size_t rep) {
    // Every repetition gets its own clone: the tail stream and the slow
    // coalition are redrawn from the clone seed, so the p99 samples the
    // regime, not one frozen draw.
    World clone = CloneWorld(world, 9100 + rep);
    core::AsyncParams params;
    params.engine.phase1_peers = 80;
    params.engine.straggler = arm.policy;
    params.engine.deadline_ms = arm.deadline_ms;
    params.walkers = 4;
    params.walk.jump = clone.catalog.suggested_jump;
    params.walk.burn_in = clone.catalog.suggested_burn_in;
    core::AsyncQuerySession session(&clone.network, clone.catalog, params);
    util::Rng rng(4300 + rep);
    Rep out;
    auto report = session.Execute(query, kSink, rng);
    if (!report.ok()) return out;
    out.error = NormalizedError(clone, query, report->answer.estimate);
    out.makespan_ms = report->makespan_ms;
    out.hedges = static_cast<double>(report->answer.hedges_sent);
    out.skips = static_cast<double>(report->answer.stragglers_skipped);
    out.deadline_hit = report->answer.deadline_hit;
    return out;
  });
  ArmStats stats;
  std::vector<double> makespans;
  size_t hits = 0;
  for (const Rep& rep : reps) {
    if (rep.error < 0.0) {
      ++stats.failures;
      continue;
    }
    stats.mean_error += rep.error;
    stats.hedges += rep.hedges;
    stats.skips += rep.skips;
    if (rep.deadline_hit) ++hits;
    makespans.push_back(rep.makespan_ms);
  }
  const double n =
      makespans.empty() ? 1.0 : static_cast<double>(makespans.size());
  stats.mean_error /= n;
  stats.hedges /= n;
  stats.skips /= n;
  stats.deadline_hit_rate = static_cast<double>(hits) / n;
  stats.p50_ms = Percentile(makespans, 0.50);
  stats.p99_ms = Percentile(makespans, 0.99);
  return stats;
}

int Run(int argc, char** argv) {
  const BenchIo io = ParseBenchIo(argc, argv);
  World world = BuildWorld(WorldConfig{});
  query::AggregateQuery query;
  query.op = query::AggregateOp::kCount;
  auto zipf = util::ZipfGenerator::Make(100, world.zipf_skew);
  query.predicate = query::PredicateForSelectivity(*zipf, 1, 0.30);
  query.required_error = 0.10;

  // The straggler regime every arm faces: heavy Pareto reply tail, 10% of
  // peers consistently 20x tardy, sink exempt from the coalition draft.
  net::FaultPlan plan;
  plan.tail = net::LatencyTail::kPareto;
  plan.tail_scale_ms = 10.0;
  plan.tail_alpha = 1.1;
  plan.slow_fraction = 0.1;
  plan.slow_factor = 20.0;
  plan.crash_immune = {kSink};
  world.network.InstallFaultPlan(plan, 6060);

  net::StragglerPolicy fixed_timer;  // The PR 1 baseline: wait it out.
  fixed_timer.retransmit_timeout_ms = 2000.0;

  net::StragglerPolicy wnw;
  wnw.walk_not_wait = true;

  net::StragglerPolicy hedge;
  hedge.hedged_replies = true;
  hedge.exponential_backoff = true;

  net::StragglerPolicy full;
  full.walk_not_wait = true;
  full.hedged_replies = true;
  full.exponential_backoff = true;
  full.health_tracking = true;

  std::vector<Arm> arms = {
      {"fixed-timeout-2000ms", fixed_timer},
      {"walk-not-wait", wnw},
      {"hedge+backoff", hedge},
      {"full-stack", full},
      {"full+deadline", full, /*deadline_ms=*/60000.0},
  };

  util::AsciiTable table({"policy", "error", "p50_ms", "p99_ms",
                          "p99_speedup", "hedges", "skips", "dl_hit"});
  double fixed_p99 = 0.0;
  double full_p99 = 0.0;
  double full_dl_hit_rate = 0.0;
  for (const Arm& arm : arms) {
    ArmStats stats = RunArm(world, query, arm);
    if (arm.policy.retransmit_timeout_ms > 0.0) fixed_p99 = stats.p99_ms;
    if (arm.deadline_ms > 0.0) {
      full_dl_hit_rate = stats.deadline_hit_rate;
    } else if (arm.policy.walk_not_wait && arm.policy.hedged_replies) {
      full_p99 = stats.p99_ms;
    }
    const double speedup =
        fixed_p99 > 0.0 && stats.p99_ms > 0.0 ? fixed_p99 / stats.p99_ms
                                              : 1.0;
    table.AddRow({arm.name, util::AsciiTable::FormatPercent(stats.mean_error),
                  util::AsciiTable::FormatDouble(stats.p50_ms, 0),
                  util::AsciiTable::FormatDouble(stats.p99_ms, 0),
                  util::AsciiTable::FormatDouble(speedup, 2),
                  util::AsciiTable::FormatDouble(stats.hedges, 1),
                  util::AsciiTable::FormatDouble(stats.skips, 1),
                  util::AsciiTable::FormatPercent(stats.deadline_hit_rate)});
  }
  RecordStragglerTelemetry(full_p99, full_dl_hit_rate);

  EmitFigure(
      "Ablation: straggler resilience (Pareto tail + slow coalition)",
      "COUNT, selectivity=30%, Pareto(x_m=10ms, alpha=1.1), 10% coalition "
      "at 20x, async engine, 48 reps; acceptance bar: full-stack p99 >= 3x "
      "better than fixed-timeout",
      table, io);
  return 0;
}

}  // namespace
}  // namespace p2paqp::bench

int main(int argc, char** argv) { return p2paqp::bench::Run(argc, argv); }

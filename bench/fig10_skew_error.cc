// Figure 10: skew (Z) vs. error % for the COUNT technique.
//
// Expected shape: errors stay within the requirement at every skew, and
// higher skew makes estimation easier (frequent values dominate and are
// easy to count), mildly reducing the error.
#include "harness.h"

namespace p2paqp::bench {
namespace {

int Run(int argc, char** argv) {
  const BenchIo io = ParseBenchIo(argc, argv);
  RunConfig base;
  base.op = query::AggregateOp::kCount;
  // Fixed range predicate across the skew sweep (the paper's setup): as Z
  // grows the same range captures ever more of the (head-concentrated)
  // mass, so frequent values make the count easier to estimate.
  base.predicate = query::RangePredicate{1, 30};
  base.required_error = 0.10;
  // Answer-relative sizing: at high skew the same range captures far more
  // mass, its absolute tolerance loosens, and the plan shrinks — the
  // paper's "when skew increases, we need fewer samples".
  base.normalization = core::ErrorNormalization::kQueryAnswer;
  auto rows = SweepSkew({0.0, 0.5, 1.0, 1.5, 2.0}, base);

  util::AsciiTable table({"skew", "error_synthetic", "error_gnutella"});
  for (const SweepRow& row : rows) {
    table.AddRow({util::AsciiTable::FormatDouble(row.x, 1),
                  util::AsciiTable::FormatPercent(row.synthetic.mean_error),
                  util::AsciiTable::FormatPercent(row.gnutella.mean_error)});
  }
  EmitFigure("Figure 10: Skew vs Error % (COUNT)",
             "required accuracy=0.10, CL=0.25, j=10, selectivity=30%", table,
             io);
  return 0;
}

}  // namespace
}  // namespace p2paqp::bench

int main(int argc, char** argv) { return p2paqp::bench::Run(argc, argv); }

// Ablation: hybrid pre-computation (the paper's future-work question 1).
//
// Runs a stream of identical COUNT queries with and without the peer-side
// freshness cache. The cache cannot reduce walking, but repeat visits stop
// paying local-scan I/O — scans per visited peer drop toward zero as the
// cache warms while accuracy stays put.
#include "harness.h"

namespace p2paqp::bench {
namespace {

int Run(int argc, char** argv) {
  const BenchIo io = ParseBenchIo(argc, argv);
  WorldConfig config_world;
  // Moderate size so revisits are common within a short query stream.
  config_world.num_peers = 2000;
  config_world.num_edges = 20000;
  config_world.cluster_level = 0.25;
  World world = BuildWorld(config_world);

  query::AggregateQuery query;
  query.op = query::AggregateOp::kCount;
  auto zipf = util::ZipfGenerator::Make(100, world.zipf_skew);
  query.predicate = query::PredicateForSelectivity(*zipf, 1, 0.30);
  query.required_error = 0.10;

  core::SystemCatalog catalog = world.catalog;
  catalog.suggested_jump = 10;
  catalog.suggested_burn_in = 50;
  core::EngineParams params;
  params.phase1_peers = 80;

  util::AsciiTable table({"query_number", "scans_per_visit_no_cache",
                          "scans_per_visit_cached", "error_cached",
                          "cache_hit_rate"});
  core::TwoPhaseEngine plain(&world.network, catalog, params);
  core::TwoPhaseEngine cached(&world.network, catalog, params);
  core::FreshnessCache cache(/*ttl_epochs=*/100);
  cached.set_cache(&cache);

  util::Rng rng_plain(11);
  util::Rng rng_cached(11);
  for (int q = 1; q <= 6; ++q) {
    auto plain_answer = plain.Execute(query, 0, rng_plain);
    auto cached_answer = cached.Execute(query, 0, rng_cached);
    if (!plain_answer.ok() || !cached_answer.ok()) continue;
    double truth = static_cast<double>(
        world.network.ExactCount(query.predicate.lo, query.predicate.hi));
    double error = std::fabs(cached_answer->estimate - truth) /
                   static_cast<double>(world.total_tuples);
    auto scans_per_visit = [](const core::ApproximateAnswer& a) {
      return static_cast<double>(a.cost.tuples_scanned) /
             static_cast<double>(a.cost.peers_visited);
    };
    double hit_rate =
        static_cast<double>(cache.hits()) /
        static_cast<double>(std::max<uint64_t>(1, cache.hits() +
                                                      cache.misses()));
    table.AddRow({util::AsciiTable::FormatInt(q),
                  util::AsciiTable::FormatDouble(scans_per_visit(*plain_answer),
                                                 1),
                  util::AsciiTable::FormatDouble(
                      scans_per_visit(*cached_answer), 1),
                  util::AsciiTable::FormatPercent(error),
                  util::AsciiTable::FormatPercent(hit_rate)});
  }
  EmitFigure("Ablation: hybrid cached sampling over a repeated-query stream",
             "COUNT, selectivity=30%, 2000 peers, cache TTL=100 epochs",
             table, io);
  return 0;
}

}  // namespace
}  // namespace p2paqp::bench

int main(int argc, char** argv) { return p2paqp::bench::Run(argc, argv); }

// Figure 7: random walk vs. BFS vs. DFS on the clustered two-sub-graph
// topology (cut size 1000, CL = 0.25).
//
// Expected shape: the random walk tracks the requirement; BFS (sampling only
// the sink's neighborhood) and DFS (jump-less, correlated walk) sit above
// it and do not improve as the requirement tightens.
//
// We report the walk twice: with the paper's pinned j = 10, and with the
// jump the preprocessing step (Sec. 3.3) actually derives for this
// small-cut topology from its second eigenvalue. The pinned-j walk degrades
// on the 1%-cut overlay exactly as the paper's own Figure 12 predicts; the
// tuned walk restores the "always within the requirement" behaviour.
#include "graph/spectral.h"
#include "harness.h"
#include "sampling/convergence.h"

#include <cstdio>

namespace p2paqp::bench {
namespace {

int Run(int argc, char** argv) {
  const BenchIo io = ParseBenchIo(argc, argv);
  WorldConfig config_world;
  config_world.num_subgraphs = 2;
  config_world.cut_edges = 1000;
  config_world.cluster_level = 0.25;
  config_world.skew = 0.2;
  World world = BuildWorld(config_world);

  // Preprocessing-derived walk tuning for this topology (capped to keep the
  // run short; the bound is what matters).
  util::Rng tune_rng(99);
  sampling::WalkTuning tuning =
      sampling::TuneWalk(world.network.graph(), 0.05, 1, tune_rng);
  size_t tuned_jump = std::min<size_t>(tuning.jump, 600);
  size_t tuned_burn = std::min<size_t>(tuning.burn_in, 1200);
  std::printf("preprocessing: lambda2=%.4f -> tuned jump=%zu burn-in=%zu\n",
              tuning.lambda2, tuned_jump, tuned_burn);

  util::AsciiTable table({"required_accuracy", "walk_j10", "walk_tuned_j",
                          "bfs", "dfs"});
  for (double required : {0.25, 0.20, 0.15, 0.10, 0.05}) {
    RunConfig config;
    config.op = query::AggregateOp::kCount;
    config.selectivity = 0.30;
    config.required_error = required;
    RunStats walk = RunExperiment(world, config);
    RunConfig tuned = config;
    tuned.jump = tuned_jump;
    tuned.burn_in = tuned_burn;
    RunStats walk_tuned = RunExperiment(world, tuned);
    RunStats bfs =
        RunBaselineExperiment(world, config, core::BaselineKind::kBfs);
    RunStats dfs =
        RunBaselineExperiment(world, config, core::BaselineKind::kDfs);
    table.AddRow({util::AsciiTable::FormatDouble(required, 2),
                  util::AsciiTable::FormatPercent(walk.mean_error),
                  util::AsciiTable::FormatPercent(walk_tuned.mean_error),
                  util::AsciiTable::FormatPercent(bfs.mean_error),
                  util::AsciiTable::FormatPercent(dfs.mean_error)});
  }
  EmitFigure("Figure 7: Required Accuracy vs Error % (walk vs BFS vs DFS)",
             "CL=0.25, Z=0.2, peers=10000, edges=100000, j=10, "
             "sub-graphs=2, cut-size=1000",
             table, io);
  return 0;
}

}  // namespace
}  // namespace p2paqp::bench

int main(int argc, char** argv) { return p2paqp::bench::Run(argc, argv); }

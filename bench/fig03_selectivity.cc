// Figure 3: selectivity vs. error % for the COUNT technique
// (required accuracy 0.10, Z = 0.2, j = 10), synthetic + Gnutella.
//
// Expected shape: normalized error grows mildly with selectivity (larger
// answers carry larger absolute uncertainty) while staying well below the
// 10% requirement.
#include "harness.h"

namespace p2paqp::bench {
namespace {

int Run(int argc, char** argv) {
  const BenchIo io = ParseBenchIo(argc, argv);
  WorldConfig synthetic;
  synthetic.cluster_level = 0.25;
  synthetic.skew = 0.2;
  WorldConfig gnutella = synthetic;
  gnutella.kind = WorldKind::kGnutella;

  World world_s = BuildWorld(synthetic);
  World world_g = BuildWorld(gnutella);

  util::AsciiTable table(
      {"selectivity_pct", "error_synthetic", "error_gnutella"});
  for (double selectivity : {0.025, 0.05, 0.10, 0.20, 0.40}) {
    RunConfig config;
    config.op = query::AggregateOp::kCount;
    config.selectivity = selectivity;
    config.required_error = 0.10;
    RunStats s = RunExperiment(world_s, config);
    RunStats g = RunExperiment(world_g, config);
    table.AddRow({util::AsciiTable::FormatDouble(selectivity * 100.0, 1),
                  util::AsciiTable::FormatPercent(s.mean_error),
                  util::AsciiTable::FormatPercent(g.mean_error)});
  }
  EmitFigure("Figure 3: Selectivity vs Error % (COUNT)",
             "required accuracy=0.10, Z=0.2, j=10", table,
             io);
  return 0;
}

}  // namespace
}  // namespace p2paqp::bench

int main(int argc, char** argv) { return p2paqp::bench::Run(argc, argv); }

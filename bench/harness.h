// Shared experiment harness for the figure-reproduction benchmarks.
//
// Reproduces the evaluation setup of Sec. 5: synthetic power-law and
// calibrated Gnutella-2001 overlays populated with Zipf data distributed
// breadth-first at a configurable cluster level, queried by the two-phase
// engine with the paper's default knobs (t = 25, j = 10, r_orig = 2000,
// five repetitions averaged, errors normalized to [0, 1] against the total
// aggregate).
//
// Every figXX binary builds worlds through this harness and prints the rows
// the corresponding figure plots. `P2PAQP_SCALE` (default 1 = paper scale)
// shrinks the simulated network for quick runs; `--csv` emits
// machine-readable output.
#ifndef P2PAQP_BENCH_HARNESS_H_
#define P2PAQP_BENCH_HARNESS_H_

#include <optional>
#include <string>
#include <vector>

#include "core/aqp.h"
#include "util/ascii_table.h"

namespace p2paqp::bench {

// ---------------------------------------------------------------------------
// World construction
// ---------------------------------------------------------------------------

enum class WorldKind {
  // Sec. 5.2.1 synthetic topology: 10,000 peers / 100,000 edges. Figures
  // 2-6 and 8-16 use the plain power-law overlay; figures 7 and 12 use the
  // clustered two-sub-graph variant (set `num_subgraphs` > 1).
  kSynthetic,
  // Calibrated 2001 Gnutella crawl stand-in: 22,556 peers / 52,321 edges.
  kGnutella,
};

struct WorldConfig {
  WorldKind kind = WorldKind::kSynthetic;
  // Zero means "paper default for the kind".
  size_t num_peers = 0;
  size_t num_edges = 0;
  // Two-sub-graph topology (figures 7 and 12). 1 = single power-law graph.
  size_t num_subgraphs = 1;
  size_t cut_edges = 0;
  // Tuples per peer (paper: 100 synthetic / ~97 Gnutella; figures 4-5 use
  // 50).
  size_t tuples_per_peer = 100;
  double cluster_level = 0.25;  // CL.
  double skew = 0.2;            // Z.
  // Physical layout: sort each peer's local table (clustered local index).
  bool sort_local_tables = false;
  uint64_t seed = 20060403;     // ICDE 2006 vintage.
};

struct World {
  net::SimulatedNetwork network;
  core::SystemCatalog catalog;  // Walk parameters pinned per experiment.
  double zipf_skew = 0.2;
  // Oracle ground truths for error normalization.
  int64_t total_tuples = 0;
  int64_t total_sum = 0;
};

// Builds the world, applying P2PAQP_SCALE to peers/edges/tuples. Aborts on
// misconfiguration (benchmarks only).
World BuildWorld(const WorldConfig& config);

// Deep copy with the network RNG re-seeded from `network_seed` (see
// net::SimulatedNetwork::Clone). Every experiment repetition runs against
// its own clone, which is what makes repetitions independent (no cost/RNG
// bleed between reps) and safe to execute in parallel.
World CloneWorld(const World& world, uint64_t network_seed);

// Scale factor from the environment (default 1.0).
double ScaleFactor();

// ---------------------------------------------------------------------------
// Experiment execution
// ---------------------------------------------------------------------------

struct RunConfig {
  query::AggregateOp op = query::AggregateOp::kCount;
  // Either an explicit predicate or a target selectivity resolved against
  // the world's Zipf distribution.
  std::optional<query::RangePredicate> predicate;
  double selectivity = 0.30;
  double required_error = 0.10;  // Delta_req.
  uint64_t tuples_per_peer_sample = 25;  // t.
  size_t jump = 10;                      // j.
  size_t burn_in = 50;
  core::ErrorNormalization normalization =
      core::ErrorNormalization::kTotalAggregate;
  size_t initial_sample_tuples = 2000;   // r_orig; m = r_orig / t.
  // The paper averages 5 independent runs; the error distribution is
  // heavy-tailed, so we default to 11 for smoother rows (set 5 to mimic
  // the paper exactly).
  size_t repetitions = 11;
  uint64_t base_seed = 7;
  // Sink-side Byzantine defenses (default: plain HT, no audits). Adversary
  // regimes are installed on the world's network (InstallAdversaryPlan)
  // before running; clones carry the plan, re-seeded per repetition.
  core::RobustnessPolicy robustness;
};

struct RunStats {
  double mean_error = 0.0;         // Normalized to [0,1] (paper metric).
  double max_error = 0.0;
  double mean_sample_tuples = 0.0; // The paper's latency surrogate.
  double mean_phase2_peers = 0.0;
  double mean_peers_visited = 0.0;
  double mean_messages = 0.0;
  double mean_bytes = 0.0;
  double mean_latency_ms = 0.0;
  size_t failures = 0;             // Runs that returned an error status.
  // Robustness/degradation telemetry (0 on honest, fault-free runs).
  double mean_observations_lost = 0.0;
  double mean_suspected_peers = 0.0;
  double mean_trimmed_mass = 0.0;
  double mean_duplicate_replies = 0.0;
};

// Runs `config.repetitions` independent queries from random sinks and
// averages, like Sec. 5.5 ("five independent experiments and averaged").
// The engine is the paper's random-walk engine; `baseline` switches to the
// BFS/DFS baselines for Fig. 7.
//
// Repetitions run through util::ParallelFor (P2PAQP_THREADS), each against
// its own CloneWorld — results are bit-identical for any thread count and
// `world` itself is never mutated.
RunStats RunExperiment(const World& world, const RunConfig& config);
RunStats RunBaselineExperiment(const World& world, const RunConfig& config,
                               core::BaselineKind baseline);

// Records one core::QueryScheduler batch into the binary's BENCH telemetry:
// `queries` answered in `wall_s` seconds with `messages` wire messages and
// `frame_hits` frame selections served from the cached sample frame. Feeds
// the `queries_per_sec` / `messages_per_query` / `frame_hits` JSON fields.
void RecordSchedulerTelemetry(size_t queries, double wall_s, double messages,
                              double frame_hits);

// Records the scale-world telemetry (bench/scale_world.cc): the world's
// resident footprint per peer, the event core's steady-state drain rate, and
// the heap allocations per drained event on the warm path. Feeds the
// identically named `bytes_per_peer` / `events_per_sec` /
// `steady_state_allocs_per_event` JSON fields, which tools/bench_gate.py
// gates as an upper bound, a lower bound, resp. exactly-zero whenever the
// committed baseline recorded them (see docs/PERFORMANCE.md, "Scale tier").
// `measure_threads` is the worker width the warm-repeat measurement
// actually used (the event core's resolved shard count — NOT the
// P2PAQP_THREADS default the other benches report); it replaces the JSON
// `threads` field so the gate's threads-matched comparisons line up with
// the measurement. `world_build_peak_rss_mb` is the process peak RSS right
// after world construction (ru_maxrss), the number the out-of-core builder
// exists to bound; gated as an upper bound when the baseline records it.
void RecordScaleTelemetry(double bytes_per_peer, double events_per_sec,
                          double steady_allocs_per_event,
                          size_t measure_threads,
                          double world_build_peak_rss_mb);

// Records the straggler-tier telemetry: the 99th-percentile simulated query
// wall time (event-clock makespan, so deterministic for a fixed seed) and
// the fraction of queries whose deadline fired, answered anytime. Feeds the
// `p99_query_wall_ms` / `deadline_hit_rate` JSON fields, which
// tools/bench_gate.py gates as upper bounds whenever the committed baseline
// recorded them (tail-latency handling must not regress silently).
void RecordStragglerTelemetry(double p99_query_wall_ms,
                              double deadline_hit_rate);

// Resolves the predicate for a run (explicit predicate wins; otherwise the
// target selectivity against Zipf(world.zipf_skew)).
query::RangePredicate ResolvePredicate(const World& world,
                                       const RunConfig& config);

// Normalized error of `estimate` against the world's oracle ground truth,
// per the paper's Sec. 5.5 metric (COUNT/SUM normalized to the total
// aggregate, AVG relative, MEDIAN/QUANTILE as rank deviation). Also used by
// the statistical verification suite.
double NormalizedError(const World& world, const query::AggregateQuery& query,
                       double estimate);

// ---------------------------------------------------------------------------
// Parameter sweeps shared by the clustering/skew figures (8-11, 13-16)
// ---------------------------------------------------------------------------

struct SweepRow {
  double x = 0.0;        // Swept parameter value (CL or Z).
  RunStats synthetic;
  RunStats gnutella;
};

// Rebuilds both worlds at each cluster level and runs `base` on them.
// Sweep points run in parallel (each builds its own pair of worlds).
std::vector<SweepRow> SweepClusterLevel(const std::vector<double>& levels,
                                        const RunConfig& base);

// Rebuilds both worlds at each skew and runs `base` on them (the predicate
// is re-resolved per skew so the target selectivity stays fixed). Sweep
// points run in parallel.
std::vector<SweepRow> SweepSkew(const std::vector<double>& skews,
                                const RunConfig& base);

// ---------------------------------------------------------------------------
// Output
// ---------------------------------------------------------------------------

// True if argv contains --csv.
bool WantCsv(int argc, char** argv);

// Parsed benchmark I/O options. `json` (from --json or a non-empty
// P2PAQP_BENCH_JSON environment variable) makes EmitFigure also write
// BENCH_<name>.json — machine-readable perf telemetry (wall time, mean
// messages/bytes/peers visited across every RunExperiment in the binary,
// thread count, scale factor) so the perf trajectory is tracked run over
// run (see docs/PERFORMANCE.md).
struct BenchIo {
  bool csv = false;
  bool json = false;
  std::string name;  // basename(argv[0]); names the BENCH_ file.
};

// Parses --csv/--json and starts the binary's wall-time clock.
BenchIo ParseBenchIo(int argc, char** argv);

// Prints the figure banner + the table (ASCII or CSV).
void EmitFigure(const std::string& title, const std::string& setup,
                const util::AsciiTable& table, bool csv);

// As above, and writes BENCH_<io.name>.json when io.json is set.
void EmitFigure(const std::string& title, const std::string& setup,
                const util::AsciiTable& table, const BenchIo& io);

}  // namespace p2paqp::bench

#endif  // P2PAQP_BENCH_HARNESS_H_

// Ablation: sampler variants at a fixed peer budget.
//
// Compares the paper's simple degree-weighted walk against the
// Metropolis-Hastings uniform walk and the (unrealizable) uniform oracle at
// the same number of selected peers, separating two effects:
//   * weighting — MH needs no degree correction but rejects hops, walking
//     longer for the same sample;
//   * reachability — the oracle shows the error floor a true uniform sample
//     would reach without any walking cost.
#include "harness.h"

namespace p2paqp::bench {
namespace {

struct VariantResult {
  double mean_error = 0.0;
  double mean_hops = 0.0;
};

VariantResult RunVariant(World& world, sampling::PeerSampler& sampler,
                         double total_weight, size_t num_peers,
                         const query::AggregateQuery& query, size_t reps) {
  VariantResult result;
  size_t successes = 0;
  for (size_t rep = 0; rep < reps; ++rep) {
    util::Rng rng(1234 + rep);
    auto sink = static_cast<graph::NodeId>(
        rng.UniformIndex(world.network.num_peers()));
    net::CostSnapshot before = world.network.cost_snapshot();
    auto visits = sampler.SamplePeers(sink, num_peers, rng);
    if (!visits.ok()) continue;
    std::vector<core::WeightedObservation> observations;
    for (const sampling::PeerVisit& visit : *visits) {
      auto aggregate = query::ExecuteLocal(
          world.network.peer(visit.peer).database(), query, 25, rng);
      world.network.RecordLocalExecution(visit.peer,
                                         aggregate.processed_tuples,
                                         aggregate.processed_tuples);
      observations.push_back(
          {aggregate.count_value, sampler.StationaryWeight(visit.peer)});
    }
    double estimate = core::HorvitzThompson(observations, total_weight);
    double truth = static_cast<double>(
        world.network.ExactCount(query.predicate.lo, query.predicate.hi));
    result.mean_error += std::fabs(estimate - truth) /
                         static_cast<double>(world.total_tuples);
    net::CostSnapshot delta =
        net::CostDelta(world.network.cost_snapshot(), before);
    result.mean_hops += static_cast<double>(delta.walker_hops);
    ++successes;
  }
  if (successes > 0) {
    result.mean_error /= static_cast<double>(successes);
    result.mean_hops /= static_cast<double>(successes);
  }
  return result;
}

int Run(int argc, char** argv) {
  const BenchIo io = ParseBenchIo(argc, argv);
  WorldConfig config_world;
  config_world.cluster_level = 0.25;
  World world = BuildWorld(config_world);
  query::AggregateQuery query;
  query.op = query::AggregateOp::kCount;
  auto zipf = util::ZipfGenerator::Make(100, world.zipf_skew);
  query.predicate = query::PredicateForSelectivity(*zipf, 1, 0.30);

  const size_t kPeers = 200;
  const size_t kReps = 5;
  double degree_total = world.catalog.total_degree_weight();
  auto uniform_total = static_cast<double>(world.catalog.num_peers);

  util::AsciiTable table({"sampler", "weighting", "error", "walker_hops"});
  {
    sampling::RandomWalkSampler sampler(
        &world.network, sampling::WalkParams{.jump = 10, .burn_in = 50});
    VariantResult r =
        RunVariant(world, sampler, degree_total, kPeers, query, kReps);
    table.AddRow({"simple_walk", "degree/2|E|",
                  util::AsciiTable::FormatPercent(r.mean_error),
                  util::AsciiTable::FormatInt(
                      static_cast<int64_t>(r.mean_hops))});
  }
  {
    sampling::RandomWalkSampler sampler(
        &world.network,
        sampling::WalkParams{
            .jump = 10,
            .burn_in = 50,
            .variant = sampling::WalkVariant::kMetropolisHastings});
    VariantResult r =
        RunVariant(world, sampler, uniform_total, kPeers, query, kReps);
    table.AddRow({"metropolis_hastings", "uniform",
                  util::AsciiTable::FormatPercent(r.mean_error),
                  util::AsciiTable::FormatInt(
                      static_cast<int64_t>(r.mean_hops))});
  }
  {
    sampling::UniformOracleSampler sampler(&world.network);
    VariantResult r =
        RunVariant(world, sampler, uniform_total, kPeers, query, kReps);
    table.AddRow({"uniform_oracle", "uniform",
                  util::AsciiTable::FormatPercent(r.mean_error),
                  util::AsciiTable::FormatInt(
                      static_cast<int64_t>(r.mean_hops))});
  }
  EmitFigure("Ablation: walk variants at a fixed 200-peer budget",
             "COUNT, selectivity=30%, CL=0.25, Z=0.2", table,
             io);
  return 0;
}

}  // namespace
}  // namespace p2paqp::bench

int main(int argc, char** argv) { return p2paqp::bench::Run(argc, argv); }

// Ablation: multi-query scheduling (shared sample frames + walker batching).
//
// The paper pays one full random walk per query. The QueryScheduler
// multiplexes K concurrent queries over one walk: the kWalker token carries
// K query bodies behind a single shared header, the Phase-I frame is reused
// across queries and batches, and replies come back batched. This ablation
// pits K independent two-phase runs against one K-wide scheduler batch and
// reports messages-per-query (the scaling bottleneck) and queries/sec.
// Acceptance line for PR 5: >= 3x messages-per-query reduction at K=8.
#include <chrono>

#include "core/multi_query.h"
#include "harness.h"

namespace p2paqp::bench {
namespace {

// Batches per arm: > 1 so frame reuse across batches is visible.
constexpr int kBatchesPerArm = 3;

std::vector<query::AggregateQuery> MakeQueries(const World& world, size_t k) {
  auto zipf = util::ZipfGenerator::Make(100, world.zipf_skew);
  std::vector<query::AggregateQuery> queries(k);
  for (size_t i = 0; i < k; ++i) {
    // Distinct selectivities so the K queries are genuinely different
    // signatures (no accidental local-result sharing beyond the cache).
    double selectivity = 0.10 + 0.60 * static_cast<double>(i) /
                                    static_cast<double>(std::max<size_t>(
                                        1, k - 1));
    queries[i].op = query::AggregateOp::kCount;
    queries[i].predicate =
        query::PredicateForSelectivity(*zipf, 1, selectivity);
    queries[i].required_error = 0.10;
  }
  return queries;
}

int Run(int argc, char** argv) {
  const BenchIo io = ParseBenchIo(argc, argv);
  WorldConfig config_world;
  config_world.num_peers = 2000;
  config_world.num_edges = 20000;
  config_world.cluster_level = 0.25;
  World world = BuildWorld(config_world);

  core::SystemCatalog catalog = world.catalog;
  catalog.suggested_jump = 10;
  catalog.suggested_burn_in = 50;

  util::AsciiTable table({"K", "msgs_per_query_indep", "msgs_per_query_batch",
                          "reduction_x", "queries_per_sec_batch",
                          "frame_hit_rate", "mean_error_batch"});

  for (size_t k : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
    std::vector<query::AggregateQuery> queries = MakeQueries(world, k);

    // --- Arm 1: K independent two-phase runs per batch. ---
    World indep_world = CloneWorld(world, 0x17D0 + k);
    core::TwoPhaseEngine engine(&indep_world.network, catalog,
                                core::EngineParams{});
    util::Rng rng_indep(101 + k);
    net::CostSnapshot indep_before = indep_world.network.cost_snapshot();
    size_t indep_answers = 0;
    for (int batch = 0; batch < kBatchesPerArm; ++batch) {
      for (const query::AggregateQuery& query : queries) {
        auto answer = engine.Execute(query, 0, rng_indep);
        if (answer.ok()) ++indep_answers;
      }
    }
    net::CostSnapshot indep_cost =
        net::CostDelta(indep_world.network.cost_snapshot(), indep_before);
    double indep_mpq =
        static_cast<double>(indep_cost.messages) /
        static_cast<double>(std::max<size_t>(1, k * kBatchesPerArm));

    // --- Arm 2: one K-wide scheduler batch per round, shared frame. ---
    World sched_world = CloneWorld(world, 0xBA7C4 + k);
    core::FreshnessCache cache(/*ttl_epochs=*/100, /*max_entries=*/1 << 16);
    core::SchedulerParams sched_params;
    sched_params.walk.jump = catalog.suggested_jump;
    sched_params.walk.burn_in = catalog.suggested_burn_in;
    core::QueryScheduler scheduler(&sched_world.network, sched_world.catalog,
                                   sched_params, &cache);
    util::Rng rng_sched(101 + k);
    net::CostSnapshot sched_before = sched_world.network.cost_snapshot();
    auto t0 = std::chrono::steady_clock::now();
    double error_sum = 0.0;
    size_t error_count = 0;
    size_t frame_hits = 0;
    size_t frame_misses = 0;
    for (int batch = 0; batch < kBatchesPerArm; ++batch) {
      core::BatchResult result = scheduler.ExecuteBatch(queries, 0, rng_sched);
      frame_hits += result.frame.frame_hits;
      frame_misses += result.frame.frame_misses;
      for (size_t i = 0; i < result.answers.size(); ++i) {
        if (!result.answers[i].ok()) continue;
        error_sum +=
            NormalizedError(sched_world, queries[i],
                            result.answers[i]->estimate);
        ++error_count;
      }
    }
    double sched_wall = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
    net::CostSnapshot sched_cost =
        net::CostDelta(sched_world.network.cost_snapshot(), sched_before);
    const size_t sched_queries = k * kBatchesPerArm;
    double sched_mpq = static_cast<double>(sched_cost.messages) /
                       static_cast<double>(sched_queries);
    double qps = sched_wall > 0.0
                     ? static_cast<double>(sched_queries) / sched_wall
                     : 0.0;
    double hit_rate =
        static_cast<double>(frame_hits) /
        static_cast<double>(std::max<size_t>(1, frame_hits + frame_misses));
    RecordSchedulerTelemetry(sched_queries, sched_wall,
                             static_cast<double>(sched_cost.messages),
                             static_cast<double>(frame_hits));

    table.AddRow(
        {util::AsciiTable::FormatInt(static_cast<int64_t>(k)),
         util::AsciiTable::FormatDouble(indep_mpq, 1),
         util::AsciiTable::FormatDouble(sched_mpq, 1),
         util::AsciiTable::FormatDouble(
             sched_mpq > 0.0 ? indep_mpq / sched_mpq : 0.0, 2),
         util::AsciiTable::FormatDouble(qps, 1),
         util::AsciiTable::FormatPercent(hit_rate),
         util::AsciiTable::FormatPercent(
             error_count > 0 ? error_sum / static_cast<double>(error_count)
                             : 0.0)});
  }

  EmitFigure(
      "Ablation: multi-query scheduler (shared frames + batched walkers)",
      "COUNT stream, 2000 peers, 3 batches per K; independent = K separate "
      "two-phase runs",
      table, io);
  return 0;
}

}  // namespace
}  // namespace p2paqp::bench

int main(int argc, char** argv) { return p2paqp::bench::Run(argc, argv); }

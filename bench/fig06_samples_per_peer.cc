// Figure 6: samples per peer (t) vs. error %, synthetic topology.
//
// Expected shape: essentially flat — once a peer ships ~25-50 tuples, more
// local samples barely improve accuracy because the binding constraint is
// the number of *peers*, not tuples per peer. This motivates the paper's
// choice of t = 25.
#include "harness.h"

namespace p2paqp::bench {
namespace {

int Run(int argc, char** argv) {
  const BenchIo io = ParseBenchIo(argc, argv);
  WorldConfig config_world;
  config_world.cluster_level = 0.25;
  config_world.skew = 0.2;
  config_world.tuples_per_peer = 250;  // Headroom for the t sweep.
  World world = BuildWorld(config_world);

  util::AsciiTable table({"samples_per_peer", "error", "sample_size"});
  for (uint64_t t : {25, 50, 100, 150, 200, 250}) {
    RunConfig config;
    config.op = query::AggregateOp::kCount;
    config.selectivity = 0.30;
    config.required_error = 0.10;
    config.tuples_per_peer_sample = t;
    // Keep the phase-I peer count fixed at 80 as t varies (the paper's
    // m = r_orig / t with r_orig scaled alongside t).
    config.initial_sample_tuples = 80 * t;
    RunStats stats = RunExperiment(world, config);
    table.AddRow({util::AsciiTable::FormatInt(static_cast<int64_t>(t)),
                  util::AsciiTable::FormatPercent(stats.mean_error),
                  util::AsciiTable::FormatInt(
                      static_cast<int64_t>(stats.mean_sample_tuples))});
  }
  EmitFigure("Figure 6: Samples per Peer vs Error %",
             "peers=10000, edges=100000, required accuracy=0.10, Z=0.2, j=10",
             table, io);
  return 0;
}

}  // namespace
}  // namespace p2paqp::bench

int main(int argc, char** argv) { return p2paqp::bench::Run(argc, argv); }
